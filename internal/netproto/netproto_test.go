package netproto

import (
	"bytes"
	"context"
	"fmt"
	"math/big"
	"net"
	"strings"
	"testing"
	"time"

	"keysearch/internal/cracker"
	"keysearch/internal/dispatch"
	"keysearch/internal/keyspace"
)

func testJob(t *testing.T, password string) JobSpec {
	t.Helper()
	return JobSpec{
		Algorithm: cracker.MD5,
		Kind:      cracker.KernelOptimized,
		Target:    cracker.MD5.HashKey([]byte(password)),
		Charset:   keyspace.Lower.String(),
		MinLen:    1,
		MaxLen:    3,
		Order:     keyspace.PrefixMajor,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgSearch, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgSearch || string(payload) != "payload" {
		t.Errorf("got %d %q", typ, payload)
	}
}

func TestFrameMalformed(t *testing.T) {
	// Oversized length header.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, byte(MsgHello)})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	// Unknown type.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0, 99})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Error("unknown type accepted")
	}
	// Truncated stream.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 9, byte(MsgJob), 1, 2})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	h, err := DecodeHello(EncodeHello(Hello{Version: 1, Name: "worker-7"}))
	if err != nil || h.Name != "worker-7" || h.Version != 1 {
		t.Errorf("hello: %+v %v", h, err)
	}

	spec := JobSpec{
		Algorithm:  cracker.SHA1,
		Kind:       cracker.KernelPlain,
		Target:     bytes.Repeat([]byte{0xab}, 20),
		SaltPrefix: []byte("pre"),
		SaltSuffix: []byte("suf"),
		Charset:    "abc123",
		MinLen:     2,
		MaxLen:     6,
		Order:      keyspace.PrefixMajor,
	}
	j, err := DecodeJob(EncodeJob(spec))
	if err != nil {
		t.Fatal(err)
	}
	if j.Algorithm != spec.Algorithm || j.Kind != spec.Kind || !bytes.Equal(j.Target, spec.Target) ||
		string(j.SaltPrefix) != "pre" || string(j.SaltSuffix) != "suf" ||
		j.Charset != spec.Charset || j.MinLen != 2 || j.MaxLen != 6 || j.Order != spec.Order {
		t.Errorf("job round trip: %+v", j)
	}

	tr, err := DecodeTuneResult(EncodeTuneResult(TuneResult{MinBatch: 12345, Throughput: 9.5e6}))
	if err != nil || tr.MinBatch != 12345 || tr.Throughput != 9.5e6 {
		t.Errorf("tune: %+v %v", tr, err)
	}

	sr, err := DecodeSearch(EncodeSearch(SearchRequest{SpecID: 0xfeedbeef, Start: big.NewInt(100), End: big.NewInt(2000)}))
	if err != nil || sr.SpecID != 0xfeedbeef || sr.Start.Int64() != 100 || sr.End.Int64() != 2000 {
		t.Errorf("search: %+v %v", sr, err)
	}

	tq, err := DecodeTuneRequest(EncodeTuneRequest(TuneRequest{SpecID: 42}))
	if err != nil || tq.SpecID != 42 {
		t.Errorf("tune request: %+v %v", tq, err)
	}

	sf, err := DecodeSpec(EncodeSpec(spec))
	if err != nil || sf.ID != SpecID(spec) || sf.Spec.Charset != spec.Charset || !bytes.Equal(sf.Spec.Target, spec.Target) {
		t.Errorf("spec frame: %+v %v", sf, err)
	}

	res, err := DecodeSearchResult(EncodeSearchResult(SearchResult{
		Found:   [][]byte{[]byte("aa"), []byte("bb")},
		Tested:  777,
		Elapsed: 3 * time.Second,
	}))
	if err != nil || len(res.Found) != 2 || string(res.Found[1]) != "bb" || res.Tested != 777 || res.Elapsed != 3*time.Second {
		t.Errorf("result: %+v %v", res, err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeJob([]byte{1, 2, 3}); err == nil {
		t.Error("short job accepted")
	}
	if _, err := DecodeHello(nil); err == nil {
		t.Error("empty hello accepted")
	}
	bad := EncodeJob(JobSpec{Algorithm: cracker.Algorithm(9), Charset: "abc", Order: keyspace.SuffixMajor})
	if _, err := DecodeJob(bad); err == nil {
		t.Error("bad algorithm accepted")
	}
	// Trailing bytes.
	good := EncodeTuneResult(TuneResult{})
	if _, err := DecodeTuneResult(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Spec frame whose carried ID does not hash to its content.
	frame := EncodeSpec(JobSpec{Algorithm: cracker.MD5, Charset: "abc", MinLen: 1, MaxLen: 2, Order: keyspace.PrefixMajor})
	frame[0] ^= 0x80
	if _, err := DecodeSpec(frame); err == nil {
		t.Error("spec ID mismatch accepted")
	}
	if _, err := DecodeSpec([]byte{1, 2, 3}); err == nil {
		t.Error("short spec frame accepted")
	}
}

// TestEndToEndCrack runs a real master and three worker connections over
// loopback TCP and cracks a password through the standard dispatcher.
func TestEndToEndCrack(t *testing.T) {
	spec := testJob(t, "net")
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 0; i < 3; i++ {
		name := string(rune('A' + i))
		go func() {
			_ = Dial(ctx, m.Addr(), WorkerConfig{Name: "worker-" + name, Workers: 2, TuneStart: 1024})
		}()
	}
	workers, err := m.AcceptWorkers(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 3 {
		t.Fatalf("workers = %d", len(workers))
	}

	d := dispatch.NewDispatcher("tcp-root", dispatch.Options{MaxSolutions: 1}, BindWorkers(spec, workers)...)
	space, _ := keyspace.New(keyspace.Lower, 1, 3, keyspace.PrefixMajor)
	rep, err := d.Search(ctx, keyspace.Interval{Start: big.NewInt(0), End: space.Size()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Found) == 0 || string(rep.Found[0]) != "net" {
		t.Errorf("found %q", rep.Found)
	}
}

// TestWorkerDeathMidSearch: killing a worker's connection mid-run must not
// break the search — the dispatcher reassigns to the survivor.
func TestWorkerDeathMidSearch(t *testing.T) {
	spec := testJob(t, "zzz") // last key: the space must be fully searched
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Victim worker: dial raw so we can slam the connection shut.
	victimConn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	victimCtx, victimCancel := context.WithCancel(ctx)
	go func() {
		_ = ServeConn(victimCtx, victimConn, WorkerConfig{Name: "victim", Workers: 1, TuneStart: 512})
	}()
	go func() {
		_ = Dial(ctx, m.Addr(), WorkerConfig{Name: "survivor", Workers: 2, TuneStart: 1024})
	}()

	workers, err := m.AcceptWorkers(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the victim shortly after the search starts.
	go func() {
		time.Sleep(50 * time.Millisecond)
		victimCancel()
		victimConn.Close()
	}()

	d := dispatch.NewDispatcher("tcp-root", dispatch.Options{}, BindWorkers(spec, workers)...)
	space, _ := keyspace.New(keyspace.Lower, 1, 3, keyspace.PrefixMajor)
	rep, err := d.Search(ctx, keyspace.Interval{Start: big.NewInt(0), End: space.Size()})
	if err != nil {
		t.Fatalf("search failed despite a survivor: %v", err)
	}
	if len(rep.Found) != 1 || string(rep.Found[0]) != "zzz" {
		t.Errorf("found %q", rep.Found)
	}
}

// TestVersionMismatch: a worker with the wrong protocol version must be
// rejected at registration.
func TestVersionMismatch(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	reply := make(chan MsgType, 1)
	go func() {
		conn, err := net.Dial("tcp", m.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		_ = WriteFrame(conn, MsgHello, EncodeHello(Hello{Version: 99, Name: "old"}))
		if typ, _, err := ReadFrame(conn); err == nil {
			reply <- typ
		}
	}()
	if _, err := m.AcceptWorkers(ctx, 1); err == nil {
		t.Error("version mismatch accepted")
	}
	// The refused worker is told why, not just hung up on.
	select {
	case typ := <-reply:
		if typ != MsgError {
			t.Errorf("refusal frame type = %d, want MsgError", typ)
		}
	case <-ctx.Done():
		t.Error("no refusal frame before the hangup")
	}
}

// TestMasterRejectsGarbage: raw garbage bytes at registration must not
// wedge or crash the master.
func TestMasterRejectsGarbage(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() {
		conn, err := net.Dial("tcp", m.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write([]byte("GET / HTTP/1.1\r\nHost: example\r\n\r\n"))
	}()
	if _, err := m.AcceptWorkers(ctx, 1); err == nil {
		t.Error("garbage registration accepted")
	}
}

// TestDecodeSearchResultBounds: a frame claiming an implausible number of
// found keys must be rejected before any allocation storm.
func TestDecodeSearchResultBounds(t *testing.T) {
	var e enc
	e.u32(1 << 30) // claimed found count
	if _, err := DecodeSearchResult(e.b); err == nil {
		t.Error("implausible found count accepted")
	}
}

// TestWorkerRejectsNonHelloFirstMessage: the master's first frame must be
// the handshake ack; anything else — including a v1 master's MsgJob —
// fails the registration with a targeted error.
func TestWorkerRejectsNonHelloFirstMessage(t *testing.T) {
	run := func(t *testing.T, reply func(client net.Conn) error) error {
		t.Helper()
		client, server := net.Pipe()
		defer client.Close()
		done := make(chan error, 1)
		go func() {
			done <- ServeConn(context.Background(), server, WorkerConfig{Name: "w"})
		}()
		// Read the hello, then answer with the wrong frame.
		if _, _, err := ReadFrame(client); err != nil {
			t.Fatal(err)
		}
		if err := reply(client); err != nil {
			t.Fatal(err)
		}
		return <-done
	}

	err := run(t, func(c net.Conn) error {
		return WriteFrame(c, MsgSearch, EncodeSearch(SearchRequest{Start: big.NewInt(0), End: big.NewInt(1)}))
	})
	if err == nil {
		t.Error("worker accepted a non-hello first message")
	}

	err = run(t, func(c net.Conn) error {
		return WriteFrame(c, MsgJob, EncodeJob(testJob(t, "abc")))
	})
	if err == nil || !strings.Contains(err.Error(), "protocol v1") {
		t.Errorf("v1 master's job frame: err = %v, want a protocol v1 mention", err)
	}
}

// TestSearchOutOfSpaceInterval: the worker must answer MsgError (not die)
// for an interval beyond its space.
func TestSearchOutOfSpaceInterval(t *testing.T) {
	spec := testJob(t, "abc")
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() {
		_ = DialRetry(ctx, m.Addr(), WorkerConfig{Name: "w", Workers: 1}, RetryPolicy{MaxAttempts: 5, BaseDelay: 20 * time.Millisecond})
	}()
	workers, err := m.AcceptWorkers(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workers[0].SearchSpec(ctx, spec, keyspace.NewInterval(0, 1<<40)); err == nil {
		t.Error("out-of-space interval accepted")
	}
	// The worker must still serve searches afterwards (the master may
	// resync the connection after an ambiguous error, so allow a redial).
	rep, err := workers[0].SearchSpec(ctx, spec, keyspace.NewInterval(0, 100))
	if err != nil || rep.Tested != 100 {
		t.Errorf("post-error search: %+v, %v", rep, err)
	}
}

// TestUnknownSpecID: a search naming a spec the connection never
// registered must come back as a remote error, not wedge the worker.
func TestUnknownSpecID(t *testing.T) {
	spec := testJob(t, "abc")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	client, server := net.Pipe()
	defer client.Close()
	go func() { _ = ServeConn(ctx, server, WorkerConfig{Name: "w", Workers: 1}) }()
	if _, _, err := ReadFrame(client); err != nil { // worker hello
		t.Fatal(err)
	}
	if err := WriteFrame(client, MsgHello, EncodeHello(Hello{Version: Version, Name: "master"})); err != nil {
		t.Fatal(err)
	}
	req := SearchRequest{SpecID: SpecID(spec), Start: big.NewInt(0), End: big.NewInt(10)}
	if err := WriteFrame(client, MsgSearch, EncodeSearch(req)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(client)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError || !strings.Contains(string(payload), "unknown spec") {
		t.Errorf("got type %d %q, want an unknown-spec MsgError", typ, payload)
	}
}

// TestMultiSpecFleet: one fleet serves two different jobs concurrently —
// the v2 protocol's whole point. Both dispatchers share the same two
// RemoteWorkers via Bind, and both passwords must be found.
func TestMultiSpecFleet(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		name := string(rune('A' + i))
		go func() {
			_ = Dial(ctx, m.Addr(), WorkerConfig{Name: "worker-" + name, Workers: 2, TuneStart: 1024})
		}()
	}
	workers, err := m.AcceptWorkers(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}

	space, _ := keyspace.New(keyspace.Lower, 1, 3, keyspace.PrefixMajor)
	results := make(chan error, 2)
	for _, password := range []string{"cat", "dog"} {
		spec := testJob(t, password)
		go func() {
			d := dispatch.NewDispatcher("fleet-"+password, dispatch.Options{MaxSolutions: 1}, BindWorkers(spec, workers)...)
			rep, err := d.Search(ctx, keyspace.Interval{Start: big.NewInt(0), End: space.Size()})
			if err != nil {
				results <- err
				return
			}
			if len(rep.Found) == 0 || string(rep.Found[0]) != password {
				results <- fmt.Errorf("job %q found %q", password, rep.Found)
				return
			}
			results <- nil
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Error(err)
		}
	}
}
