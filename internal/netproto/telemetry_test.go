package netproto

import (
	"context"
	"math/big"
	"sync"
	"testing"
	"time"

	"keysearch/internal/dispatch"
	"keysearch/internal/keyspace"
	"keysearch/internal/netproto/chaos"
	"keysearch/internal/telemetry"
)

// TestTelemetryCleanRun: a fault-free networked search populates the
// frame, ping and dispatch counters coherently, and the dispatch tested
// totals tie exactly to the keyspace.
func TestTelemetryCleanRun(t *testing.T) {
	spec := testJob(t, "net")
	mreg := telemetry.NewRegistry()
	wreg := telemetry.NewRegistry()
	m, err := NewMaster("127.0.0.1:0", MasterOptions{
		Heartbeat:        25 * time.Millisecond,
		HeartbeatTimeout: 5 * time.Second,
		Retry:            fastRetry,
		Telemetry:        mreg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		_ = Dial(ctx, m.Addr(), WorkerConfig{
			Name: "w", Workers: 1, TuneStart: 512, Telemetry: wreg,
		})
	}()
	workers, err := m.AcceptWorkers(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}

	d := dispatch.NewDispatcher("tel-root", dispatch.Options{
		MaxChunk:  2048,
		Telemetry: mreg,
	}, BindWorkers(spec, workers)...)
	rep := searchSpace(ctx, t, d)
	if want := spaceSize(t); rep.Tested != want {
		t.Fatalf("tested %d, want %d", rep.Tested, want)
	}

	ms := mreg.Snapshot()
	if want := spaceSize(t); ms.SumPrefix(telemetry.MetricDispatchTested+".") != want {
		t.Fatalf("dispatch counters sum %d, want %d",
			ms.SumPrefix(telemetry.MetricDispatchTested+"."), want)
	}
	if ms.Counters[telemetry.MetricNetFramesSent] == 0 ||
		ms.Counters[telemetry.MetricNetFramesRecv] == 0 {
		t.Fatalf("master frame counters empty: %+v", ms.Counters)
	}
	// Every pong the master got answers a ping it sent.
	if ms.Counters[telemetry.MetricNetPongs] > ms.Counters[telemetry.MetricNetPings] {
		t.Fatalf("pongs %d exceed pings %d",
			ms.Counters[telemetry.MetricNetPongs], ms.Counters[telemetry.MetricNetPings])
	}
	if ms.Counters[telemetry.MetricNetPings] > 0 {
		if h, ok := ms.Histograms[telemetry.MetricNetPingRTT]; !ok || h.Count == 0 {
			t.Fatal("pings sent but no RTT samples recorded")
		}
	}

	ws := wreg.Snapshot()
	if ws.Counters[telemetry.MetricNetFramesSent] == 0 ||
		ws.Counters[telemetry.MetricNetFramesRecv] == 0 {
		t.Fatalf("worker frame counters empty: %+v", ws.Counters)
	}
	// The worker's core counter ties to the keyspace: it evaluated every
	// identifier exactly once (no requeues in a clean run).
	if want := spaceSize(t); ws.Counters[telemetry.MetricCoreTested] != want {
		t.Fatalf("worker core.tested %d, want %d", ws.Counters[telemetry.MetricCoreTested], want)
	}
}

// TestTelemetryChaosExactness: a severed worker forces retries, a rejoin
// and a requeue; the dispatch tested counters must STILL tie exactly to
// the keyspace, with the duplicated work visible in the requeue/retry
// counters rather than inflating coverage.
func TestTelemetryChaosExactness(t *testing.T) {
	spec := testJob(t, "zzz")
	reg := telemetry.NewRegistry()
	m, err := NewMaster("127.0.0.1:0", MasterOptions{
		Heartbeat: -1, // keep the worker write schedule exact
		Retry:     fastRetry,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 0; i < 3; i++ {
		cfg := WorkerConfig{Name: "worker-" + string(rune('A'+i)), Workers: 1, TuneStart: 512}
		if i == 1 {
			cfg.Dialer = chaosDialer(chaos.Plan{SeverAfterWrites: 5, Mode: chaos.Close})
		}
		go func() { _ = Dial(ctx, m.Addr(), cfg) }()
	}
	workers, err := m.AcceptWorkers(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}

	d := dispatch.NewDispatcher("chaos-tel", dispatch.Options{
		MaxChunk:  1024,
		Telemetry: reg,
	}, BindWorkers(spec, workers)...)
	rep := searchSpace(ctx, t, d)
	want := spaceSize(t)
	if rep.Tested != want {
		t.Fatalf("tested %d, want %d (exact despite sever)", rep.Tested, want)
	}

	s := reg.Snapshot()
	if got := s.SumPrefix(telemetry.MetricDispatchTested + "."); got != want {
		t.Fatalf("summed dispatch counters %d, want %d", got, want)
	}
	if got := s.Counters[telemetry.MetricDispatchTested]; got != want {
		t.Fatalf("aggregate dispatch counter %d, want %d", got, want)
	}
	// The severed chunk shows up as requeued/retested work, never as
	// tested coverage.
	if s.Counters[telemetry.MetricDispatchRequeues] == 0 {
		t.Fatal("sever produced no dispatch requeue")
	}
	if s.Counters[telemetry.MetricDispatchRetested] == 0 {
		t.Fatal("requeued chunk not accounted in retested")
	}
	if s.Counters[telemetry.MetricNetRetries] == 0 {
		t.Fatal("sever produced no call retry")
	}
	if got, rr := s.Counters[telemetry.MetricDispatchRetested], rep.Retested; got != rr {
		t.Fatalf("retested counter %d != report %d", got, rr)
	}
}

// TestTelemetryReconnectCounters: a worker that loses its only connection
// and rejoins by name must increment net.reconnects and emit a reconnect
// event, with no dispatch-level requeue.
func TestTelemetryReconnectCounters(t *testing.T) {
	spec := testJob(t, "net")
	reg := telemetry.NewRegistry()
	m, err := NewMaster("127.0.0.1:0", MasterOptions{
		Heartbeat: -1,
		Retry:     RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cfg := WorkerConfig{
		Name: "phoenix", Workers: 1, TuneStart: 512,
		Dialer: chaosDialer(chaos.Plan{SeverAfterWrites: 5, Mode: chaos.Close}),
	}
	go func() {
		_ = DialRetry(ctx, m.Addr(), cfg, RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond})
	}()
	workers, err := m.AcceptWorkers(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	requeues := 0
	d := dispatch.NewDispatcher("rejoin-tel", dispatch.Options{
		MaxSolutions: 1,
		MaxChunk:     4096,
		Telemetry:    reg,
		OnRequeue: func(string, keyspace.Interval, error) {
			mu.Lock()
			requeues++
			mu.Unlock()
		},
	}, BindWorkers(spec, workers)...)
	space, _ := keyspace.New(keyspace.Lower, 1, 3, keyspace.PrefixMajor)
	rep, err := d.Search(ctx, keyspace.Interval{Start: big.NewInt(0), End: space.Size()})
	if err != nil {
		t.Fatalf("search failed despite reconnect: %v", err)
	}
	if len(rep.Found) == 0 || string(rep.Found[0]) != "net" {
		t.Fatalf("found %q", rep.Found)
	}

	s := reg.Snapshot()
	if s.Counters[telemetry.MetricNetReconnects] == 0 {
		t.Fatal("rejoin did not increment net.reconnects")
	}
	var sawJoin, sawReconnect bool
	for _, ev := range s.Events {
		switch ev.Type {
		case telemetry.EventJoin:
			sawJoin = true
		case telemetry.EventReconnect:
			sawReconnect = true
		}
	}
	if !sawJoin || !sawReconnect {
		t.Fatalf("events missing join=%v reconnect=%v", sawJoin, sawReconnect)
	}
	mu.Lock()
	defer mu.Unlock()
	if requeues != 0 {
		t.Fatalf("reconnect within the retry window still requeued %d chunks", requeues)
	}
}
