package netproto

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"keysearch/internal/core"
	"keysearch/internal/dispatch"
	"keysearch/internal/keyspace"
)

// Master accepts worker connections and exposes each as a
// dispatch.Worker, so the regular Dispatcher drives the network exactly
// like local workers — the paper's hierarchy-agnostic pattern.
type Master struct {
	ln   net.Listener
	spec JobSpec
}

// NewMaster listens on addr (e.g. "127.0.0.1:0") for workers and will
// hand each the given job.
func NewMaster(addr string, spec JobSpec) (*Master, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Master{ln: ln, spec: spec}, nil
}

// Addr returns the listen address workers should dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Close stops accepting workers.
func (m *Master) Close() error { return m.ln.Close() }

// AcceptWorkers waits for n workers to register and returns them as
// dispatch.Workers. The job spec is sent to each on registration.
func (m *Master) AcceptWorkers(ctx context.Context, n int) ([]dispatch.Worker, error) {
	type result struct {
		w   dispatch.Worker
		err error
	}
	ch := make(chan result, n)
	go func() {
		for i := 0; i < n; i++ {
			conn, err := m.ln.Accept()
			if err != nil {
				ch <- result{err: err}
				return
			}
			w, err := m.register(conn)
			ch <- result{w: w, err: err}
		}
	}()

	var workers []dispatch.Worker
	for len(workers) < n {
		select {
		case <-ctx.Done():
			return workers, ctx.Err()
		case r := <-ch:
			if r.err != nil {
				return workers, r.err
			}
			workers = append(workers, r.w)
		}
	}
	return workers, nil
}

func (m *Master) register(conn net.Conn) (dispatch.Worker, error) {
	t, payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if t != MsgHello {
		conn.Close()
		return nil, fmt.Errorf("netproto: expected hello, got type %d", t)
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if hello.Version != Version {
		conn.Close()
		return nil, fmt.Errorf("netproto: version mismatch: worker %d, master %d", hello.Version, Version)
	}
	if err := WriteFrame(conn, MsgJob, EncodeJob(m.spec)); err != nil {
		conn.Close()
		return nil, err
	}
	return &remoteWorker{name: hello.Name, conn: conn}, nil
}

// remoteWorker proxies dispatch.Worker calls over the connection. Calls
// are serialized: the protocol is strict request/response.
type remoteWorker struct {
	name string
	mu   sync.Mutex
	conn net.Conn
}

// Name identifies the remote worker.
func (w *remoteWorker) Name() string { return w.name }

// Tune runs the tuning step remotely.
func (w *remoteWorker) Tune(ctx context.Context) (core.Tuning, error) {
	payload, err := w.call(ctx, MsgTune, nil, MsgTuneResult)
	if err != nil {
		return core.Tuning{}, err
	}
	res, err := DecodeTuneResult(payload)
	if err != nil {
		return core.Tuning{}, err
	}
	return core.Tuning{MinBatch: res.MinBatch, Throughput: res.Throughput}, nil
}

// Search runs an interval remotely.
func (w *remoteWorker) Search(ctx context.Context, iv keyspace.Interval) (*dispatch.Report, error) {
	payload, err := w.call(ctx, MsgSearch, EncodeSearch(SearchRequest{Start: iv.Start, End: iv.End}), MsgSearchResult)
	if err != nil {
		return nil, err
	}
	res, err := DecodeSearchResult(payload)
	if err != nil {
		return nil, err
	}
	return &dispatch.Report{Found: res.Found, Tested: res.Tested, Elapsed: res.Elapsed}, nil
}

// call sends a request and awaits the matching response type; a MsgError
// response becomes an error. Cancellation closes the connection (the
// worker notices EOF), which is also how a hung remote is abandoned.
func (w *remoteWorker) call(ctx context.Context, req MsgType, payload []byte, want MsgType) ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()

	if deadline, ok := ctx.Deadline(); ok {
		_ = w.conn.SetDeadline(deadline)
	} else {
		_ = w.conn.SetDeadline(time.Time{})
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			_ = w.conn.SetDeadline(time.Now()) // unblock pending IO
		case <-stop:
		}
	}()

	if err := WriteFrame(w.conn, req, payload); err != nil {
		return nil, fmt.Errorf("netproto: %s: %w", w.name, err)
	}
	t, resp, err := ReadFrame(w.conn)
	if err != nil {
		return nil, fmt.Errorf("netproto: %s: %w", w.name, err)
	}
	switch t {
	case want:
		return resp, nil
	case MsgError:
		return nil, fmt.Errorf("netproto: %s: remote error: %s", w.name, resp)
	default:
		return nil, fmt.Errorf("netproto: %s: unexpected response type %d", w.name, t)
	}
}
