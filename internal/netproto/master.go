package netproto

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"keysearch/internal/core"
	"keysearch/internal/dispatch"
	"keysearch/internal/keyspace"
	"keysearch/internal/telemetry"
)

// ErrMasterClosed is returned by AcceptWorkers and pending worker calls
// when Master.Close tears the master down.
var ErrMasterClosed = errors.New("netproto: master closed")

// RemoteError is an application-level failure reported by a worker over
// MsgError: the connection is healthy and the call is NOT retried (the
// same request would fail the same way).
type RemoteError struct {
	Worker string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("netproto: %s: remote error: %s", e.Worker, e.Msg)
}

// RequeueError reports that a worker handed its interval back with
// MsgRequeue instead of finishing it. The master treats it like a
// transport failure (the retry/backoff window gives the worker a chance
// to rejoin), so the dispatcher requeues the interval either way.
type RequeueError struct {
	Worker string
	Reason string
}

func (e *RequeueError) Error() string {
	return fmt.Sprintf("netproto: %s: worker requeued its interval: %s", e.Worker, e.Reason)
}

// MasterOptions tunes the master's failure model. The defaults mirror the
// virtual-time simulator's FailureDetect: a dead worker is detected
// within roughly HeartbeatTimeout and its interval requeued.
type MasterOptions struct {
	// Heartbeat is the ping interval while a call is in flight (0 = 2s).
	// Exactly -1 disables heartbeats — and with them, unless
	// HeartbeatTimeout is set explicitly, the per-frame read deadlines —
	// which is how tests and debug rigs keep calls alive under
	// breakpoints. Any other negative value is a configuration error and
	// NewMaster rejects it.
	Heartbeat time.Duration
	// HeartbeatTimeout is how long the master waits for ANY frame (pong
	// or result) before declaring the worker dead (0 = 4×Heartbeat).
	HeartbeatTimeout time.Duration
	// WriteTimeout bounds every frame write (0 = 10s).
	WriteTimeout time.Duration
	// Retry governs failed worker calls: each backoff doubles as a
	// reconnection window in which a re-registering worker (same name)
	// picks its calls back up on the fresh connection.
	Retry RetryPolicy
	// PendingBuffer caps how many registered-but-uncollected workers the
	// master holds for AcceptWorkers before refusing new registrations
	// (0 = 64).
	PendingBuffer int
	// Telemetry, when non-nil, receives the master-side protocol metrics:
	// frames sent/received, pings/pongs and their round trips, call
	// retries, rejoins and requeues, plus join/retry/reconnect events
	// (see internal/telemetry's names.go).
	Telemetry *telemetry.Registry
}

func (o MasterOptions) withDefaults() MasterOptions {
	if o.Heartbeat == 0 {
		o.Heartbeat = 2 * time.Second
	}
	if o.HeartbeatTimeout <= 0 && o.Heartbeat > 0 {
		o.HeartbeatTimeout = 4 * o.Heartbeat
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.PendingBuffer <= 0 {
		o.PendingBuffer = 64
	}
	return o
}

// testHookPendingFull, nil outside tests, fires on the registration
// goroutine when the pending buffer is full, before the worker entry is
// torn down — the window in which a concurrent rejoin can offer a
// replacement connection.
var testHookPendingFull atomic.Pointer[func(worker string)]

// Master accepts worker connections and exposes each as a RemoteWorker:
// a spec-carrying proxy that any number of jobs can call into, or — via
// Bind — a plain dispatch.Worker for a fixed spec, so the regular
// Dispatcher drives the network exactly like local workers (the paper's
// hierarchy-agnostic pattern).
//
// The accept loop runs for the master's whole life: a worker that
// re-registers under a name seen before is a REJOIN, and its fresh
// connection replaces the broken one inside the existing RemoteWorker
// rather than surfacing as a new worker.
type Master struct {
	ln      net.Listener
	opts    MasterOptions
	pending chan *RemoteWorker
	regErr  chan error
	done    chan struct{}

	tel *netTelemetry

	mu        sync.Mutex
	closed    bool
	acceptErr error
	workers   map[string]*RemoteWorker
	conns     map[net.Conn]struct{}
}

// NewMaster listens on addr (e.g. "127.0.0.1:0") for workers. Job specs
// are not fixed at listen time: each call names its spec, and the master
// registers specs on worker connections as needed. At most one
// MasterOptions may be passed; omitting it selects the defaults
// documented on MasterOptions.
func NewMaster(addr string, opts ...MasterOptions) (*Master, error) {
	var o MasterOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Heartbeat < 0 && o.Heartbeat != -1 {
		return nil, fmt.Errorf("netproto: MasterOptions.Heartbeat %v: the only negative value is -1 (disable heartbeats)", o.Heartbeat)
	}
	o = o.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &Master{
		ln:      ln,
		opts:    o,
		pending: make(chan *RemoteWorker, o.PendingBuffer),
		regErr:  make(chan error, 8),
		done:    make(chan struct{}),
		workers: make(map[string]*RemoteWorker),
		conns:   make(map[net.Conn]struct{}),
		tel:     newNetTelemetry(o.Telemetry),
	}
	go m.acceptLoop()
	return m, nil
}

// Addr returns the listen address workers should dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Close stops accepting workers, closes every accepted worker connection
// and fails pending AcceptWorkers calls and in-flight worker calls with
// ErrMasterClosed.
func (m *Master) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	workers := make([]*RemoteWorker, 0, len(m.workers))
	for _, w := range m.workers {
		workers = append(workers, w)
	}
	conns := make([]net.Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	m.mu.Unlock()

	err := m.ln.Close()
	for _, w := range workers {
		w.shutdown()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	return err
}

func (m *Master) acceptLoop() {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			m.mu.Lock()
			if m.closed {
				m.acceptErr = ErrMasterClosed
			} else {
				m.acceptErr = err
			}
			m.mu.Unlock()
			close(m.done)
			return
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			conn.Close()
			continue
		}
		m.conns[conn] = struct{}{}
		m.mu.Unlock()
		go m.register(conn)
	}
}

func (m *Master) dropConn(c net.Conn) {
	_ = c.Close()
	m.mu.Lock()
	delete(m.conns, c)
	m.mu.Unlock()
}

// register runs the handshake on a fresh connection: hello in, hello ack
// out, then either bind the connection into an existing (rejoining)
// worker or surface a brand-new worker to AcceptWorkers. Registration
// failures go to the regErr channel so AcceptWorkers can report them,
// but never stop the accept loop.
func (m *Master) register(conn net.Conn) {
	fail := func(err error) {
		m.dropConn(conn)
		select {
		case m.regErr <- err:
		default:
		}
	}
	write := func(t MsgType, p []byte) error {
		_ = conn.SetWriteDeadline(time.Now().Add(m.opts.WriteTimeout))
		err := WriteFrame(conn, t, p)
		_ = conn.SetWriteDeadline(time.Time{})
		if err == nil {
			m.tel.sent.Inc()
		}
		return err
	}

	_ = conn.SetReadDeadline(time.Now().Add(m.opts.WriteTimeout))
	t, payload, err := ReadFrame(conn)
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil {
		fail(err)
		return
	}
	m.tel.recv.Inc()
	if t != MsgHello {
		fail(fmt.Errorf("netproto: expected hello, got type %d", t))
		return
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		fail(err)
		return
	}
	if hello.Version != Version {
		err := fmt.Errorf("netproto: version mismatch: worker %d, master %d", hello.Version, Version)
		_ = write(MsgError, []byte(err.Error())) // tell the v1 worker why before hanging up
		fail(err)
		return
	}
	if err := write(MsgHello, EncodeHello(Hello{Version: Version, Name: "master"})); err != nil {
		fail(err)
		return
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.dropConn(conn)
		return
	}
	if w, ok := m.workers[hello.Name]; ok {
		m.mu.Unlock()
		w.offerConn(conn) // rejoin: hand the fresh conn to the existing worker
		m.tel.reconnects.Inc()
		m.tel.reg.Emit(telemetry.EventReconnect, hello.Name, 0, "rejoined by name")
		return
	}
	w := &RemoteWorker{
		name:    hello.Name,
		opts:    m.opts,
		tel:     m.tel,
		pings:   newPingClock(),
		conn:    conn,
		newConn: make(chan net.Conn, 1),
		closeCh: make(chan struct{}),
		drop:    m.dropConn,
	}
	m.workers[hello.Name] = w
	m.mu.Unlock()
	m.tel.reg.Emit(telemetry.EventJoin, hello.Name, 0, "registered")

	select {
	case m.pending <- w:
	default:
		if hook := testHookPendingFull.Load(); hook != nil {
			(*hook)(hello.Name)
		}
		// Nobody is collecting workers and the buffer is full; drop the
		// registration so the worker redials later. A concurrent rejoin
		// may already have found this worker in the map and offered it a
		// replacement connection, so tear down in an order that cannot
		// orphan a live conn: only delete the entry if it is still ours,
		// mark the worker closed (offerConn refuses new conns from here
		// on), then drain the one conn that may have been enqueued first.
		m.mu.Lock()
		if m.workers[hello.Name] == w {
			delete(m.workers, hello.Name)
		}
		m.mu.Unlock()
		w.shutdown()
		select {
		case old := <-w.newConn:
			m.dropConn(old)
		default:
		}
		m.dropConn(conn)
	}
}

// AcceptWorkers waits for n workers to register and returns them. A
// registration failure (bad hello, version mismatch) is returned as the
// error; Close unblocks the call with ErrMasterClosed.
func (m *Master) AcceptWorkers(ctx context.Context, n int) ([]*RemoteWorker, error) {
	var workers []*RemoteWorker
	for len(workers) < n {
		select {
		case <-ctx.Done():
			return workers, ctx.Err()
		case <-m.done:
			m.mu.Lock()
			err := m.acceptErr
			m.mu.Unlock()
			return workers, err
		case err := <-m.regErr:
			return workers, err
		case w := <-m.pending:
			workers = append(workers, w)
		}
	}
	return workers, nil
}

// RemoteWorker proxies calls to one worker process over its connection.
// Calls are serialized: the protocol is strict request/response, with
// MsgPing / MsgPong liveness frames interleaved while a call is in
// flight. A failed call closes the connection, waits out the retry
// backoff for the worker to re-register, and retries on the replacement
// connection.
//
// Every call names a JobSpec; the proxy tracks which spec IDs the
// CURRENT connection has seen and sends a MsgSpec registration ahead of
// the first call that references a new one. A replacement connection
// after a reconnect starts with an empty table, so specs are re-sent
// transparently and rejoin works mid-job for any number of jobs.
type RemoteWorker struct {
	name string
	opts MasterOptions
	tel  *netTelemetry
	drop func(net.Conn)

	// pings spans the connection's whole lifetime (with pingSeq never
	// reused), so a pong that crosses the wire with a result and is read
	// by the NEXT call still matches the ping that caused it.
	pings   *pingClock
	pingSeq atomic.Uint64

	// searchSeq allocates sequence numbers naming live searches (never
	// reused, so a stale MsgProgress or MsgShrinkAck from an earlier
	// search can always be told apart); active is the search currently in
	// flight on the connection, nil between calls. Shrink addresses the
	// active search without touching the call serializer, so a steal can
	// truncate a search while its call is blocked reading the result.
	searchSeq atomic.Uint64
	active    atomic.Pointer[activeSearch]

	mu sync.Mutex // serializes calls

	cmu     sync.Mutex // guards conn and the spec-sent table
	conn    net.Conn
	newConn chan net.Conn
	closeCh chan struct{}
	closed  bool

	// specConn names the connection the sent-sets below are valid for; a
	// different current connection means empty worker-side tables.
	specConn   net.Conn
	specSent   map[uint64]bool
	corpusSent map[uint64]bool

	// corpora holds encoded target sets by content hash for every spec
	// that names one, so a reconnect can re-transfer the corpus exactly as
	// it re-registers specs. Registered once, read-only thereafter.
	corpora map[uint64][]byte
}

// Name identifies the remote worker.
func (w *RemoteWorker) Name() string { return w.name }

// shutdown (master closing) aborts waits for reconnection.
func (w *RemoteWorker) shutdown() {
	w.cmu.Lock()
	if !w.closed {
		w.closed = true
		close(w.closeCh)
	}
	w.cmu.Unlock()
}

// offerConn installs a replacement connection from a rejoining worker.
//
//keyvet:allow lockorder (the newConn send cannot block: the channel has
// capacity 1, every sender holds cmu, and the select just above drained
// it under that same lock)
func (w *RemoteWorker) offerConn(c net.Conn) {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	if w.closed {
		c.Close()
		return
	}
	if w.conn != nil {
		// The old conn is stale the moment its worker re-registered.
		w.drop(w.conn)
		w.conn = nil
	}
	select {
	case old := <-w.newConn:
		w.drop(old)
	default:
	}
	w.newConn <- c
}

// takeConn returns the live connection, waiting up to wait for a
// rejoining worker to supply one.
func (w *RemoteWorker) takeConn(ctx context.Context, wait time.Duration) (net.Conn, error) {
	w.cmu.Lock()
	c := w.conn
	if c == nil {
		select {
		case c = <-w.newConn:
			w.conn = c
		default:
		}
	}
	closed := w.closed
	w.cmu.Unlock()
	if closed {
		return nil, ErrMasterClosed
	}
	if c != nil {
		return c, nil
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case c = <-w.newConn:
		w.cmu.Lock()
		w.conn = c
		w.cmu.Unlock()
		return c, nil
	case <-timer.C:
		return nil, fmt.Errorf("netproto: %s: no connection (worker did not rejoin)", w.name)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-w.closeCh:
		return nil, ErrMasterClosed
	}
}

// discardConn closes a failed connection; the next call waits for a
// replacement.
func (w *RemoteWorker) discardConn(c net.Conn) {
	w.drop(c)
	w.cmu.Lock()
	if w.conn == c {
		w.conn = nil
	}
	w.cmu.Unlock()
}

// specNeeded reports whether the spec must be (re-)registered before a
// call that references it can run on conn.
func (w *RemoteWorker) specNeeded(conn net.Conn, id uint64) bool {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	return w.specConn != conn || !w.specSent[id]
}

// corpusNeeded reports whether the corpus must be (re-)transferred before
// a spec that references it can be registered on conn.
func (w *RemoteWorker) corpusNeeded(conn net.Conn, id uint64) bool {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	return w.specConn != conn || !w.corpusSent[id]
}

// markSpecSent records that conn's worker-side tables hold the spec and
// (when non-zero) its corpus. Only called after a successful exchange, so
// a spec the worker refused is retried (idempotently — re-installing a
// spec overwrites in place, and the worker skips chunks of an
// already-assembled corpus).
func (w *RemoteWorker) markSpecSent(conn net.Conn, id, corpusID uint64) {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	if w.specConn != conn {
		w.specConn = conn
		w.specSent = make(map[uint64]bool)
		w.corpusSent = make(map[uint64]bool)
	}
	w.specSent[id] = true
	if corpusID != 0 {
		if w.corpusSent == nil {
			w.corpusSent = make(map[uint64]bool)
		}
		w.corpusSent[corpusID] = true
	}
}

// RegisterCorpus stores an encoded target set with the worker proxy and
// returns its content hash. Every call whose spec carries that CorpusID
// transfers the blob (chunked over MsgCorpus) ahead of the spec, at most
// once per connection. Registering the same blob again is a no-op.
func (w *RemoteWorker) RegisterCorpus(encoded []byte) uint64 {
	id := specHash(encoded)
	w.cmu.Lock()
	defer w.cmu.Unlock()
	if w.corpora == nil {
		w.corpora = make(map[uint64][]byte)
	}
	if _, ok := w.corpora[id]; !ok {
		w.corpora[id] = encoded
	}
	return id
}

// corpusBlob returns a registered corpus encoding.
func (w *RemoteWorker) corpusBlob(id uint64) ([]byte, bool) {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	b, ok := w.corpora[id]
	return b, ok
}

// activeSearch names the search in flight on a worker's connection and
// carries the hooks Shrink and the read loop need to reach it: the
// attempt-bound write function (installed by callOn, nil between
// attempts), the one armed ack waiter, and the attempt's stop channel so
// a Shrink caller unblocks when the call ends without an ack.
type activeSearch struct {
	seq        uint64
	onProgress func(done uint64)

	mu    sync.Mutex
	write func(t MsgType, p []byte) error
	ackCh chan ShrinkAck
	done  chan struct{}
}

// deliver hands a shrink ack to the waiter, if one is armed. The channel
// has capacity 1, so a waiter that already gave up loses nothing.
func (as *activeSearch) deliver(ack ShrinkAck) {
	as.mu.Lock()
	ch := as.ackCh
	as.ackCh = nil
	as.mu.Unlock()
	if ch != nil {
		ch <- ack
	}
}

// cleanCancel reports a call that was cancelled AND whose connection was
// drained to a frame boundary: the caller must not retry, but unlike
// every other call failure the connection stays usable for the next
// call, so call() must not discard it.
type cleanCancel struct{ err error }

func (c *cleanCancel) Error() string { return c.err.Error() }
func (c *cleanCancel) Unwrap() error { return c.err }

// NewSearchSeq allocates a worker-lifetime-unique sequence number naming
// one live search, so Shrink can address it while it runs. Allocate the
// seq before starting the search; the same seq stays valid across the
// call's internal reconnect retries.
func (w *RemoteWorker) NewSearchSeq() uint64 { return w.searchSeq.Add(1) }

// Shrink asks the active search — which must carry seq — to stop at key
// offset keep (from its interval start); keep = 0 cancels at the next
// batch boundary. It returns the effective boundary the worker committed
// to, which is ≥ keep when the worker had already tested past the
// requested point, and ok = false if the search could not be shrunk (no
// such search in flight, the worker predates the shrink protocol, the
// search already ran past its end, or the ack timed out) — in which case
// the search is unaffected and still owns its full interval.
//
// Shrink holds no RemoteWorker locks across the wait, so it is safe to
// call from a scheduler thread while the search call blocks elsewhere.
func (w *RemoteWorker) Shrink(ctx context.Context, seq, keep uint64) (uint64, bool) {
	as := w.active.Load()
	if as == nil || as.seq != seq {
		return 0, false
	}
	as.mu.Lock()
	write, done := as.write, as.done
	if write == nil || as.ackCh != nil { // between attempts, or a shrink is already in flight
		as.mu.Unlock()
		return 0, false
	}
	ch := make(chan ShrinkAck, 1)
	as.ackCh = ch
	as.mu.Unlock()
	defer func() {
		as.mu.Lock()
		if as.ackCh == ch {
			as.ackCh = nil
		}
		as.mu.Unlock()
	}()
	if write(MsgShrink, EncodeShrink(Shrink{Seq: seq, Keep: keep})) != nil {
		return 0, false
	}
	wait := w.opts.HeartbeatTimeout
	if wait <= 0 {
		wait = w.opts.WriteTimeout
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case ack := <-ch:
		if !ack.OK {
			return ack.Keep, false
		}
		w.tel.shrinks.Inc()
		return ack.Keep, true
	case <-done:
	case <-timer.C:
	case <-ctx.Done():
	}
	return 0, false
}

// TuneSpec runs the tuning step remotely against the given spec.
func (w *RemoteWorker) TuneSpec(ctx context.Context, spec JobSpec) (core.Tuning, error) {
	payload, err := w.call(ctx, spec, MsgTune, EncodeTuneRequest(TuneRequest{SpecID: SpecID(spec)}), MsgTuneResult, nil)
	if err != nil {
		return core.Tuning{}, err
	}
	res, err := DecodeTuneResult(payload)
	if err != nil {
		return core.Tuning{}, err
	}
	return core.Tuning{MinBatch: res.MinBatch, Throughput: res.Throughput}, nil
}

// SearchSpec runs an interval remotely against the given spec.
func (w *RemoteWorker) SearchSpec(ctx context.Context, spec JobSpec, iv keyspace.Interval) (*dispatch.Report, error) {
	return w.SearchSpecLive(ctx, spec, iv, w.NewSearchSeq(), 0, nil)
}

// SearchSpecLive is SearchSpec with the live-search hooks of protocol v4:
// the worker reports its tested-up-to mark roughly every progressEvery of
// search time (0 disables the marks), and the search answers to
// Shrink(seq, ...) while it runs. onProgress is invoked on the
// connection's read loop — it must return quickly and must not call back
// into this RemoteWorker. Cancelling ctx mid-search asks the worker to
// stop at the next batch boundary and drains its truncated result, so
// the connection survives cancellation without a reconnect cycle.
func (w *RemoteWorker) SearchSpecLive(ctx context.Context, spec JobSpec, iv keyspace.Interval, seq uint64, progressEvery time.Duration, onProgress func(done uint64)) (*dispatch.Report, error) {
	req := SearchRequest{SpecID: SpecID(spec), Seq: seq, ProgressEvery: progressEvery, Start: iv.Start, End: iv.End}
	as := &activeSearch{seq: seq, onProgress: onProgress}
	payload, err := w.call(ctx, spec, MsgSearch, EncodeSearch(req), MsgSearchResult, as)
	if err != nil {
		return nil, err
	}
	res, err := DecodeSearchResult(payload)
	if err != nil {
		return nil, err
	}
	return &dispatch.Report{Found: res.Found, Tested: res.Tested, Elapsed: res.Elapsed}, nil
}

// Bind fixes a spec, adapting the worker to the spec-less
// dispatch.Worker interface so a Dispatcher can drive it for one job.
// Any number of Bind adapters can share one RemoteWorker; the underlying
// calls are serialized either way.
func (w *RemoteWorker) Bind(spec JobSpec) dispatch.Worker {
	return &boundWorker{w: w, spec: spec}
}

// BindWorkers binds every worker to the same spec — the common
// one-job-per-fleet case (keymaster's classic mode and most tests).
func BindWorkers(spec JobSpec, workers []*RemoteWorker) []dispatch.Worker {
	out := make([]dispatch.Worker, len(workers))
	for i, w := range workers {
		out[i] = w.Bind(spec)
	}
	return out
}

type boundWorker struct {
	w    *RemoteWorker
	spec JobSpec
}

func (b *boundWorker) Name() string { return b.w.Name() }
func (b *boundWorker) Tune(ctx context.Context) (core.Tuning, error) {
	return b.w.TuneSpec(ctx, b.spec)
}
func (b *boundWorker) Search(ctx context.Context, iv keyspace.Interval) (*dispatch.Report, error) {
	return b.w.SearchSpec(ctx, b.spec, iv)
}

// call sends a request and awaits the matching response, retrying per the
// policy on transport failures. Each backoff window doubles as a rejoin
// window: if the worker re-registers in time, the retry lands on the new
// connection — with the spec re-registered first, since the fresh
// connection's table is empty. A RemoteError is returned immediately
// (the connection is fine, the request is not).
//
//keyvet:allow lockorder (w.mu is the per-worker RPC serializer: holding
// it across the backoff/rejoin wait IS the contract — concurrent calls
// queue behind it rather than interleave frames on one connection)
func (w *RemoteWorker) call(ctx context.Context, spec JobSpec, req MsgType, payload []byte, want MsgType, as *activeSearch) ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()

	id := SpecID(spec)
	var lastErr error
	for attempt := 0; attempt < w.opts.Retry.attempts(); attempt++ {
		if attempt > 0 {
			w.tel.retries.Inc()
			w.tel.reg.Emit(telemetry.EventRetry, w.name, uint64(attempt), lastErr.Error())
		}
		conn, err := w.takeConn(ctx, w.opts.Retry.Backoff(attempt))
		if err != nil {
			if errors.Is(err, ErrMasterClosed) || ctx.Err() != nil {
				return nil, err
			}
			if lastErr == nil {
				lastErr = err
			}
			continue
		}
		// The prelude re-establishes the connection's tables as needed:
		// corpus chunks first (the spec referencing them is refused
		// otherwise), then the spec registration.
		var prelude []frame
		if spec.CorpusID != 0 && w.corpusNeeded(conn, spec.CorpusID) {
			blob, ok := w.corpusBlob(spec.CorpusID)
			if !ok {
				return nil, fmt.Errorf("netproto: %s: spec references corpus %016x, but no such corpus was registered (call RegisterCorpus first)", w.name, spec.CorpusID)
			}
			for _, p := range CorpusFrames(blob) {
				prelude = append(prelude, frame{t: MsgCorpus, p: p})
			}
		}
		if w.specNeeded(conn, id) {
			prelude = append(prelude, frame{t: MsgSpec, p: EncodeSpec(spec)})
		}
		resp, err := w.callOn(ctx, conn, prelude, req, payload, want, as)
		if err == nil {
			w.markSpecSent(conn, id, spec.CorpusID)
			return resp, nil
		}
		var clean *cleanCancel
		if errors.As(err, &clean) {
			// Cancelled, but drained to a frame boundary: the worker
			// accepted the prelude and the call, so its tables are current
			// and the connection is reusable as-is.
			w.markSpecSent(conn, id, spec.CorpusID)
			return nil, clean.err
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			if len(prelude) > 0 {
				// The error may answer a prelude frame rather than the
				// request itself, in which case a second error frame for
				// the request is still in flight; drop the connection so
				// no later call reads a stale frame.
				w.discardConn(conn)
			}
			return nil, err
		}
		w.discardConn(conn)
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, lastErr
}

// frame is one queued protocol message (type + payload).
type frame struct {
	t MsgType
	p []byte
}

// callOn performs one request/response exchange on conn — preceded by
// the prelude frames (corpus chunks, spec registration) when non-empty —
// pinging at the heartbeat interval and bounding every read by the
// heartbeat timeout. A worker that is merely busy keeps answering pongs
// from its read loop; a dead one times out and is declared failed.
//
// For search calls, as names the search: MsgProgress and MsgShrinkAck
// frames matching its seq are routed to it, and cancellation turns into
// a graceful shrink-to-zero drain (see below) instead of tearing the
// connection down mid-frame.
func (w *RemoteWorker) callOn(ctx context.Context, conn net.Conn, prelude []frame, req MsgType, payload []byte, want MsgType, as *activeSearch) ([]byte, error) {
	var wmu sync.Mutex
	write := func(t MsgType, p []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		_ = conn.SetWriteDeadline(time.Now().Add(w.opts.WriteTimeout))
		err := WriteFrame(conn, t, p)
		_ = conn.SetWriteDeadline(time.Time{})
		if err == nil {
			w.tel.sent.Inc()
		}
		return err
	}

	stop := make(chan struct{})
	defer close(stop)
	if as != nil {
		as.mu.Lock()
		as.write = write
		as.done = stop
		as.mu.Unlock()
		w.active.Store(as)
		defer func() {
			w.active.CompareAndSwap(as, nil)
			as.mu.Lock()
			as.write = nil
			as.mu.Unlock()
		}()
	}
	go func() {
		select {
		case <-ctx.Done():
			if as != nil {
				// Graceful cancel: ask the worker to stop at its next batch
				// boundary and drain the truncated result, keeping the
				// connection at a frame boundary. Poison the conn only if
				// the drain stalls (worker stuck mid-batch or gone).
				if write(MsgShrink, EncodeShrink(Shrink{Seq: as.seq, Keep: 0})) == nil {
					wait := w.opts.HeartbeatTimeout
					if wait <= 0 {
						wait = w.opts.WriteTimeout
					}
					t := time.NewTimer(wait)
					defer t.Stop()
					select {
					case <-stop:
						return
					case <-t.C:
					}
				}
			}
			_ = conn.SetDeadline(time.Now()) // unblock pending IO
		case <-stop:
		}
	}()

	for _, f := range prelude {
		if err := write(f.t, f.p); err != nil {
			return nil, fmt.Errorf("netproto: %s: %w", w.name, err)
		}
	}
	if err := write(req, payload); err != nil {
		return nil, fmt.Errorf("netproto: %s: %w", w.name, err)
	}

	if w.opts.Heartbeat > 0 {
		go func() {
			tick := time.NewTicker(w.opts.Heartbeat)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					seq := w.pingSeq.Add(1)
					w.pings.sentAt(seq)
					if write(MsgPing, EncodeHeartbeat(Heartbeat{Seq: seq})) != nil {
						return
					}
					w.tel.pings.Inc()
				case <-stop:
					return
				}
			}
		}()
	}

	for {
		// A cancelled search call keeps reading: the graceful-cancel
		// watcher has asked the worker to stop, and the truncated result
		// (or the poisoned deadline, if the drain stalls) ends the loop.
		if ctx.Err() != nil && as == nil {
			return nil, ctx.Err()
		}
		if w.opts.HeartbeatTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(w.opts.HeartbeatTimeout))
		}
		t, resp, err := ReadFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("netproto: %s: %w", w.name, err)
		}
		w.tel.recv.Inc()
		switch t {
		case MsgPong:
			// Liveness confirmed; the deadline resets on the next read.
			w.tel.pongs.Inc()
			if hb, derr := DecodeHeartbeat(resp); derr == nil {
				if rtt, ok := w.pings.rtt(hb.Seq); ok {
					w.tel.rtt.ObserveDuration(rtt)
					w.tel.reg.Emit(telemetry.EventHeartbeat, w.name, hb.Seq, rtt.String())
				}
			}
			continue
		case MsgProgress:
			// Frames from an earlier search (stale seq) are inert.
			if as != nil {
				if pg, derr := DecodeProgress(resp); derr == nil && pg.Seq == as.seq {
					w.tel.progress.Inc()
					if as.onProgress != nil {
						as.onProgress(pg.Done)
					}
				}
			}
			continue
		case MsgShrinkAck:
			if as != nil {
				if ack, derr := DecodeShrinkAck(resp); derr == nil && ack.Seq == as.seq {
					as.deliver(ack)
				}
			}
			continue
		case want:
			_ = conn.SetReadDeadline(time.Time{})
			if err := ctx.Err(); err != nil {
				// The drain succeeded: the result frame answers the
				// cancelled call, and the conn sits at a frame boundary.
				return nil, &cleanCancel{err: err}
			}
			return resp, nil
		case MsgError:
			_ = conn.SetReadDeadline(time.Time{})
			if err := ctx.Err(); err != nil && as != nil {
				return nil, &cleanCancel{err: err}
			}
			return nil, &RemoteError{Worker: w.name, Msg: string(resp)}
		case MsgRequeue:
			rq, derr := DecodeRequeue(resp)
			if derr != nil {
				return nil, fmt.Errorf("netproto: %s: bad requeue: %w", w.name, derr)
			}
			w.tel.requeues.Inc()
			w.tel.reg.Emit(telemetry.EventRequeue, w.name, 0, rq.Reason)
			return nil, &RequeueError{Worker: w.name, Reason: rq.Reason}
		default:
			return nil, fmt.Errorf("netproto: %s: unexpected response type %d", w.name, t)
		}
	}
}
