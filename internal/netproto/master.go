package netproto

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"keysearch/internal/core"
	"keysearch/internal/dispatch"
	"keysearch/internal/keyspace"
	"keysearch/internal/telemetry"
)

// ErrMasterClosed is returned by AcceptWorkers and pending worker calls
// when Master.Close tears the master down.
var ErrMasterClosed = errors.New("netproto: master closed")

// RemoteError is an application-level failure reported by a worker over
// MsgError: the connection is healthy and the call is NOT retried (the
// same request would fail the same way).
type RemoteError struct {
	Worker string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("netproto: %s: remote error: %s", e.Worker, e.Msg)
}

// RequeueError reports that a worker handed its interval back with
// MsgRequeue instead of finishing it. The master treats it like a
// transport failure (the retry/backoff window gives the worker a chance
// to rejoin), so the dispatcher requeues the interval either way.
type RequeueError struct {
	Worker string
	Reason string
}

func (e *RequeueError) Error() string {
	return fmt.Sprintf("netproto: %s: worker requeued its interval: %s", e.Worker, e.Reason)
}

// MasterOptions tunes the master's failure model. The defaults mirror the
// virtual-time simulator's FailureDetect: a dead worker is detected
// within roughly HeartbeatTimeout and its interval requeued.
type MasterOptions struct {
	// Heartbeat is the ping interval while a call is in flight
	// (0 = 2s; negative disables heartbeats).
	Heartbeat time.Duration
	// HeartbeatTimeout is how long the master waits for ANY frame (pong
	// or result) before declaring the worker dead (0 = 4×Heartbeat).
	HeartbeatTimeout time.Duration
	// WriteTimeout bounds every frame write (0 = 10s).
	WriteTimeout time.Duration
	// Retry governs failed worker calls: each backoff doubles as a
	// reconnection window in which a re-registering worker (same name)
	// picks its calls back up on the fresh connection.
	Retry RetryPolicy
	// Telemetry, when non-nil, receives the master-side protocol metrics:
	// frames sent/received, pings/pongs and their round trips, call
	// retries, rejoins and requeues, plus join/retry/reconnect events
	// (see internal/telemetry's names.go).
	Telemetry *telemetry.Registry
}

func (o MasterOptions) withDefaults() MasterOptions {
	if o.Heartbeat == 0 {
		o.Heartbeat = 2 * time.Second
	}
	if o.HeartbeatTimeout <= 0 && o.Heartbeat > 0 {
		o.HeartbeatTimeout = 4 * o.Heartbeat
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	return o
}

// Master accepts worker connections and exposes each as a
// dispatch.Worker, so the regular Dispatcher drives the network exactly
// like local workers — the paper's hierarchy-agnostic pattern.
//
// The accept loop runs for the master's whole life: a worker that
// re-registers under a name seen before is a REJOIN, and its fresh
// connection replaces the broken one inside the existing dispatch.Worker
// rather than surfacing as a new worker.
type Master struct {
	ln      net.Listener
	spec    JobSpec
	opts    MasterOptions
	pending chan dispatch.Worker
	regErr  chan error
	done    chan struct{}

	tel *netTelemetry

	mu        sync.Mutex
	closed    bool
	acceptErr error
	workers   map[string]*remoteWorker
	conns     map[net.Conn]struct{}
}

// NewMaster listens on addr (e.g. "127.0.0.1:0") for workers and will
// hand each the given job. At most one MasterOptions may be passed;
// omitting it selects the defaults documented on MasterOptions.
func NewMaster(addr string, spec JobSpec, opts ...MasterOptions) (*Master, error) {
	var o MasterOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &Master{
		ln:      ln,
		spec:    spec,
		opts:    o.withDefaults(),
		pending: make(chan dispatch.Worker, 64),
		regErr:  make(chan error, 8),
		done:    make(chan struct{}),
		workers: make(map[string]*remoteWorker),
		conns:   make(map[net.Conn]struct{}),
		tel:     newNetTelemetry(o.Telemetry),
	}
	go m.acceptLoop()
	return m, nil
}

// Addr returns the listen address workers should dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Close stops accepting workers, closes every accepted worker connection
// and fails pending AcceptWorkers calls and in-flight worker calls with
// ErrMasterClosed.
func (m *Master) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	workers := make([]*remoteWorker, 0, len(m.workers))
	for _, w := range m.workers {
		workers = append(workers, w)
	}
	conns := make([]net.Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	m.mu.Unlock()

	err := m.ln.Close()
	for _, w := range workers {
		w.shutdown()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	return err
}

func (m *Master) acceptLoop() {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			m.mu.Lock()
			if m.closed {
				m.acceptErr = ErrMasterClosed
			} else {
				m.acceptErr = err
			}
			m.mu.Unlock()
			close(m.done)
			return
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			conn.Close()
			continue
		}
		m.conns[conn] = struct{}{}
		m.mu.Unlock()
		go m.register(conn)
	}
}

func (m *Master) dropConn(c net.Conn) {
	_ = c.Close()
	m.mu.Lock()
	delete(m.conns, c)
	m.mu.Unlock()
}

// register runs the handshake on a fresh connection: hello in, job out,
// then either bind the connection into an existing (rejoining) worker or
// surface a brand-new worker to AcceptWorkers. Registration failures go
// to the regErr channel so AcceptWorkers can report them, but never stop
// the accept loop.
func (m *Master) register(conn net.Conn) {
	fail := func(err error) {
		m.dropConn(conn)
		select {
		case m.regErr <- err:
		default:
		}
	}

	_ = conn.SetReadDeadline(time.Now().Add(m.opts.WriteTimeout))
	t, payload, err := ReadFrame(conn)
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil {
		fail(err)
		return
	}
	m.tel.recv.Inc()
	if t != MsgHello {
		fail(fmt.Errorf("netproto: expected hello, got type %d", t))
		return
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		fail(err)
		return
	}
	if hello.Version != Version {
		fail(fmt.Errorf("netproto: version mismatch: worker %d, master %d", hello.Version, Version))
		return
	}
	_ = conn.SetWriteDeadline(time.Now().Add(m.opts.WriteTimeout))
	err = WriteFrame(conn, MsgJob, EncodeJob(m.spec))
	_ = conn.SetWriteDeadline(time.Time{})
	if err != nil {
		fail(err)
		return
	}
	m.tel.sent.Inc()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.dropConn(conn)
		return
	}
	if w, ok := m.workers[hello.Name]; ok {
		m.mu.Unlock()
		w.offerConn(conn) // rejoin: hand the fresh conn to the existing worker
		m.tel.reconnects.Inc()
		m.tel.reg.Emit(telemetry.EventReconnect, hello.Name, 0, "rejoined by name")
		return
	}
	w := &remoteWorker{
		name:    hello.Name,
		opts:    m.opts,
		tel:     m.tel,
		pings:   newPingClock(),
		conn:    conn,
		newConn: make(chan net.Conn, 1),
		closeCh: make(chan struct{}),
		drop:    m.dropConn,
	}
	m.workers[hello.Name] = w
	m.mu.Unlock()
	m.tel.reg.Emit(telemetry.EventJoin, hello.Name, 0, "registered")

	select {
	case m.pending <- w:
	default:
		// Nobody is collecting workers and the buffer is full; drop the
		// registration so the worker redials later.
		m.mu.Lock()
		delete(m.workers, hello.Name)
		m.mu.Unlock()
		m.dropConn(conn)
	}
}

// AcceptWorkers waits for n workers to register and returns them as
// dispatch.Workers. The job spec is sent to each on registration. A
// registration failure (bad hello, version mismatch) is returned as the
// error; Close unblocks the call with ErrMasterClosed.
func (m *Master) AcceptWorkers(ctx context.Context, n int) ([]dispatch.Worker, error) {
	var workers []dispatch.Worker
	for len(workers) < n {
		select {
		case <-ctx.Done():
			return workers, ctx.Err()
		case <-m.done:
			m.mu.Lock()
			err := m.acceptErr
			m.mu.Unlock()
			return workers, err
		case err := <-m.regErr:
			return workers, err
		case w := <-m.pending:
			workers = append(workers, w)
		}
	}
	return workers, nil
}

// remoteWorker proxies dispatch.Worker calls over the connection. Calls
// are serialized: the protocol is strict request/response, with MsgPing /
// MsgPong liveness frames interleaved while a call is in flight. A failed
// call closes the connection, waits out the retry backoff for the worker
// to re-register, and retries on the replacement connection.
type remoteWorker struct {
	name string
	opts MasterOptions
	tel  *netTelemetry
	drop func(net.Conn)

	// pings spans the connection's whole lifetime (with pingSeq never
	// reused), so a pong that crosses the wire with a result and is read
	// by the NEXT call still matches the ping that caused it.
	pings   *pingClock
	pingSeq atomic.Uint64

	mu sync.Mutex // serializes calls

	cmu     sync.Mutex // guards conn
	conn    net.Conn
	newConn chan net.Conn
	closeCh chan struct{}
	closed  bool
}

// Name identifies the remote worker.
func (w *remoteWorker) Name() string { return w.name }

// shutdown (master closing) aborts waits for reconnection.
func (w *remoteWorker) shutdown() {
	w.cmu.Lock()
	if !w.closed {
		w.closed = true
		close(w.closeCh)
	}
	w.cmu.Unlock()
}

// offerConn installs a replacement connection from a rejoining worker.
func (w *remoteWorker) offerConn(c net.Conn) {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	if w.closed {
		c.Close()
		return
	}
	if w.conn != nil {
		// The old conn is stale the moment its worker re-registered.
		w.drop(w.conn)
		w.conn = nil
	}
	select {
	case old := <-w.newConn:
		w.drop(old)
	default:
	}
	w.newConn <- c
}

// takeConn returns the live connection, waiting up to wait for a
// rejoining worker to supply one.
func (w *remoteWorker) takeConn(ctx context.Context, wait time.Duration) (net.Conn, error) {
	w.cmu.Lock()
	c := w.conn
	if c == nil {
		select {
		case c = <-w.newConn:
			w.conn = c
		default:
		}
	}
	closed := w.closed
	w.cmu.Unlock()
	if closed {
		return nil, ErrMasterClosed
	}
	if c != nil {
		return c, nil
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case c = <-w.newConn:
		w.cmu.Lock()
		w.conn = c
		w.cmu.Unlock()
		return c, nil
	case <-timer.C:
		return nil, fmt.Errorf("netproto: %s: no connection (worker did not rejoin)", w.name)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-w.closeCh:
		return nil, ErrMasterClosed
	}
}

// discardConn closes a failed connection; the next call waits for a
// replacement.
func (w *remoteWorker) discardConn(c net.Conn) {
	w.drop(c)
	w.cmu.Lock()
	if w.conn == c {
		w.conn = nil
	}
	w.cmu.Unlock()
}

// Tune runs the tuning step remotely.
func (w *remoteWorker) Tune(ctx context.Context) (core.Tuning, error) {
	payload, err := w.call(ctx, MsgTune, nil, MsgTuneResult)
	if err != nil {
		return core.Tuning{}, err
	}
	res, err := DecodeTuneResult(payload)
	if err != nil {
		return core.Tuning{}, err
	}
	return core.Tuning{MinBatch: res.MinBatch, Throughput: res.Throughput}, nil
}

// Search runs an interval remotely.
func (w *remoteWorker) Search(ctx context.Context, iv keyspace.Interval) (*dispatch.Report, error) {
	payload, err := w.call(ctx, MsgSearch, EncodeSearch(SearchRequest{Start: iv.Start, End: iv.End}), MsgSearchResult)
	if err != nil {
		return nil, err
	}
	res, err := DecodeSearchResult(payload)
	if err != nil {
		return nil, err
	}
	return &dispatch.Report{Found: res.Found, Tested: res.Tested, Elapsed: res.Elapsed}, nil
}

// call sends a request and awaits the matching response, retrying per the
// policy on transport failures. Each backoff window doubles as a rejoin
// window: if the worker re-registers in time, the retry lands on the new
// connection. A RemoteError is returned immediately (the connection is
// fine, the request is not).
func (w *remoteWorker) call(ctx context.Context, req MsgType, payload []byte, want MsgType) ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt < w.opts.Retry.attempts(); attempt++ {
		if attempt > 0 {
			w.tel.retries.Inc()
			w.tel.reg.Emit(telemetry.EventRetry, w.name, uint64(attempt), lastErr.Error())
		}
		conn, err := w.takeConn(ctx, w.opts.Retry.Backoff(attempt))
		if err != nil {
			if errors.Is(err, ErrMasterClosed) || ctx.Err() != nil {
				return nil, err
			}
			if lastErr == nil {
				lastErr = err
			}
			continue
		}
		resp, err := w.callOn(ctx, conn, req, payload, want)
		if err == nil {
			return resp, nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			return nil, err
		}
		w.discardConn(conn)
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, lastErr
}

// callOn performs one request/response exchange on conn, pinging at the
// heartbeat interval and bounding every read by the heartbeat timeout. A
// worker that is merely busy keeps answering pongs from its read loop; a
// dead one times out and is declared failed.
func (w *remoteWorker) callOn(ctx context.Context, conn net.Conn, req MsgType, payload []byte, want MsgType) ([]byte, error) {
	var wmu sync.Mutex
	write := func(t MsgType, p []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		_ = conn.SetWriteDeadline(time.Now().Add(w.opts.WriteTimeout))
		err := WriteFrame(conn, t, p)
		_ = conn.SetWriteDeadline(time.Time{})
		if err == nil {
			w.tel.sent.Inc()
		}
		return err
	}

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Now()) // unblock pending IO
		case <-stop:
		}
	}()

	if err := write(req, payload); err != nil {
		return nil, fmt.Errorf("netproto: %s: %w", w.name, err)
	}

	if w.opts.Heartbeat > 0 {
		go func() {
			tick := time.NewTicker(w.opts.Heartbeat)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					seq := w.pingSeq.Add(1)
					w.pings.sentAt(seq)
					if write(MsgPing, EncodeHeartbeat(Heartbeat{Seq: seq})) != nil {
						return
					}
					w.tel.pings.Inc()
				case <-stop:
					return
				}
			}
		}()
	}

	for {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if w.opts.HeartbeatTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(w.opts.HeartbeatTimeout))
		}
		t, resp, err := ReadFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("netproto: %s: %w", w.name, err)
		}
		w.tel.recv.Inc()
		switch t {
		case MsgPong:
			// Liveness confirmed; the deadline resets on the next read.
			w.tel.pongs.Inc()
			if hb, derr := DecodeHeartbeat(resp); derr == nil {
				if rtt, ok := w.pings.rtt(hb.Seq); ok {
					w.tel.rtt.ObserveDuration(rtt)
					w.tel.reg.Emit(telemetry.EventHeartbeat, w.name, hb.Seq, rtt.String())
				}
			}
			continue
		case want:
			_ = conn.SetReadDeadline(time.Time{})
			return resp, nil
		case MsgError:
			_ = conn.SetReadDeadline(time.Time{})
			return nil, &RemoteError{Worker: w.name, Msg: string(resp)}
		case MsgRequeue:
			rq, derr := DecodeRequeue(resp)
			if derr != nil {
				return nil, fmt.Errorf("netproto: %s: bad requeue: %w", w.name, derr)
			}
			w.tel.requeues.Inc()
			w.tel.reg.Emit(telemetry.EventRequeue, w.name, 0, rq.Reason)
			return nil, &RequeueError{Worker: w.name, Reason: rq.Reason}
		default:
			return nil, fmt.Errorf("netproto: %s: unexpected response type %d", w.name, t)
		}
	}
}
