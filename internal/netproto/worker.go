package netproto

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"keysearch/internal/core"
	"keysearch/internal/cracker"
	"keysearch/internal/keyspace"
	"keysearch/internal/targetset"
	"keysearch/internal/telemetry"
)

// WorkerConfig configures a worker process.
type WorkerConfig struct {
	// Name identifies this worker to the master. Rejoins are keyed by
	// name: a worker that reconnects under the same name resumes the
	// master-side identity it had before the connection broke.
	Name string
	// Workers is the local goroutine count (0 = NumCPU).
	Workers int
	// TuneStart and TuneTarget parameterize the local tuning step.
	TuneStart  uint64
	TuneTarget float64
	// WriteTimeout bounds every frame write (0 = 10s).
	WriteTimeout time.Duration
	// JoinTimeout bounds the registration handshake (0 = 30s).
	JoinTimeout time.Duration
	// ProgressBatch is the worker's internal search granularity in keys
	// (0 = 65536): progress marks, shrink boundaries and cancellation
	// all land on multiples of it. Smaller batches mean finer steal
	// splits at the cost of more per-batch overhead.
	ProgressBatch uint64
	// Throttle sleeps this long after every completed batch of a search
	// (never during tuning, so the balance rule still sees the true
	// speed). A deliberately slowed worker is how the steal tests — and
	// operators rehearsing straggler policy — fake a failing node.
	Throttle time.Duration
	// Dialer, when non-nil, replaces the default TCP dialer in Dial and
	// DialRetry — the splice point for the chaos harness and for future
	// TLS transport.
	Dialer func(ctx context.Context, network, addr string) (net.Conn, error)
	// Telemetry, when non-nil, receives the worker-side protocol metrics
	// (frames sent/received, pings answered, reconnect attempts) and is
	// threaded into the local search so core.tested / core.rate reflect
	// the candidates this worker evaluates.
	Telemetry *telemetry.Registry
}

func (cfg WorkerConfig) dial(ctx context.Context, addr string) (net.Conn, error) {
	if cfg.Dialer != nil {
		return cfg.Dialer(ctx, "tcp", addr)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

func (cfg WorkerConfig) writeTimeout() time.Duration {
	if cfg.WriteTimeout <= 0 {
		return 10 * time.Second
	}
	return cfg.WriteTimeout
}

func (cfg WorkerConfig) joinTimeout() time.Duration {
	if cfg.JoinTimeout <= 0 {
		return 30 * time.Second
	}
	return cfg.JoinTimeout
}

func (cfg WorkerConfig) progressBatch() uint64 {
	if cfg.ProgressBatch == 0 {
		return 1 << 16
	}
	return cfg.ProgressBatch
}

// shrinkState is the shared view of one in-flight search: the search
// goroutine advances done/busyTo batch by batch, the read loop lowers
// limit on MsgShrink. The invariant limit >= busyTo >= done holds at
// all times — a shrink can only land on work not yet begun, which is
// what makes the acked boundary exact.
type shrinkState struct {
	seq uint64

	mu     sync.Mutex
	limit  uint64 // search ends at this key offset (from interval start)
	busyTo uint64 // end of the batch currently being tested
	done   uint64 // keys fully tested
}

// shrink lowers the search limit to keep (rounded up past the batch in
// flight) and reports the effective boundary. ok is false when the
// search has already reached or passed every reachable boundary at or
// after keep — the caller's split would gain nothing.
func (ss *shrinkState) shrink(keep uint64) (uint64, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	cut := keep
	if cut < ss.busyTo {
		cut = ss.busyTo
	}
	if cut >= ss.limit {
		return ss.limit, false
	}
	ss.limit = cut
	return cut, true
}

// Test hooks, nil outside tests. They let the race tests park a
// goroutine at the exact point a historical interleaving bug lived:
// testHookSearchBegin fires on the read loop right after a search is
// accepted (busy and inflight set); testHookSearchDone fires on the
// search goroutine after the local search returns, before the
// result/requeue disposition is decided; testHookRequeueClaimed fires
// on the shutdown goroutine after it claims the in-flight interval,
// before the requeue frame is written.
// They are atomic because worker goroutines from one test (blocked in
// a teardown write, say) may still load a hook while the next test
// stores its own.
// Each hook receives the worker's name so a test can ignore firings
// from other tests' workers still winding down.
var (
	testHookSearchBegin    atomic.Pointer[func(worker string)]
	testHookSearchDone     atomic.Pointer[func(worker string)]
	testHookRequeueClaimed atomic.Pointer[func(worker string)]
)

// ServeConn runs the worker side of the protocol on an established
// connection: exchange hellos, then answer spec registrations, tune,
// search and ping requests until the connection closes or ctx is
// cancelled. Job specs arrive over MsgSpec and are cached per spec ID,
// so one connection serves any number of different jobs.
//
// Requests execute on a separate goroutine so the read loop keeps
// answering MsgPing with MsgPong while a long search occupies the cores —
// that is what distinguishes this worker from a dead one on the master's
// side. If ctx is cancelled while a search is in flight, the worker hands
// the interval back with MsgRequeue (best effort) before hanging up, so
// the master requeues it without waiting for a heartbeat timeout. The
// requeue decision and the search's own completion race is resolved
// under one lock: exactly one of MsgSearchResult and MsgRequeue leaves
// the worker for any accepted interval.
func ServeConn(ctx context.Context, conn net.Conn, cfg WorkerConfig) error {
	return serveConn(ctx, conn, cfg, nil)
}

func serveConn(ctx context.Context, conn net.Conn, cfg WorkerConfig, onReady func()) error {
	defer conn.Close()

	nt := newNetTelemetry(cfg.Telemetry)
	var wmu sync.Mutex
	write := func(t MsgType, p []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		_ = conn.SetWriteDeadline(time.Now().Add(cfg.writeTimeout()))
		err := WriteFrame(conn, t, p)
		_ = conn.SetWriteDeadline(time.Time{})
		if err == nil {
			nt.sent.Inc()
		}
		return err
	}
	sendErr := func(err error) { _ = write(MsgError, []byte(err.Error())) }

	if err := write(MsgHello, EncodeHello(Hello{Version: Version, Name: cfg.Name})); err != nil {
		return err
	}
	_ = conn.SetReadDeadline(time.Now().Add(cfg.joinTimeout()))
	t, payload, err := ReadFrame(conn)
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil {
		return err
	}
	switch t {
	case MsgHello:
		ack, err := DecodeHello(payload)
		if err != nil {
			return err
		}
		if ack.Version != Version {
			return fmt.Errorf("netproto: version mismatch: master %d, worker %d", ack.Version, Version)
		}
	case MsgJob:
		// A v1 master sends the job at registration instead of acking the
		// hello; name the incompatibility rather than failing obscurely.
		return fmt.Errorf("netproto: master speaks protocol v1 (sent job at registration); this worker requires v%d", Version)
	case MsgError:
		return fmt.Errorf("netproto: master refused registration: %s", payload)
	default:
		return fmt.Errorf("netproto: expected handshake ack, got message type %d", t)
	}
	if onReady != nil {
		onReady()
	}

	// specs is the per-connection spec table: cracker jobs built once per
	// spec ID and reused across calls. Only the read loop touches it.
	specs := make(map[uint64]*cracker.Job)

	// corpora is the per-connection corpus table (decoded target sets by
	// content hash) and asm the in-flight chunk assemblies feeding it.
	// Only the read loop touches either.
	corpora := make(map[uint64]*targetset.Set)
	type corpusAsm struct {
		buf   []byte
		total uint32
	}
	asm := make(map[uint64]*corpusAsm)

	// st tracks the single in-flight request (the protocol is strict
	// request/response; pings are the only interleaved frames). The
	// in-flight interval is set in the same critical section that marks
	// the worker busy, and claimed — by exactly one of the shutdown path
	// and the search-completion path — under the same lock, so each
	// accepted interval gets exactly one disposition.
	var st struct {
		sync.Mutex
		busy     bool
		inflight *keyspace.Interval
		requeued bool // shutdown claimed the interval; drop the result
		search   *shrinkState // live search's shrink state, nil otherwise
	}
	serveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-serveCtx.Done()
		if ctx.Err() == nil {
			return // normal return path, connection already going down
		}
		// Local shutdown: claim the in-flight interval (so a concurrently
		// completing search drops its result instead of double-reporting),
		// hand it back, then hang up.
		st.Lock()
		iv := st.inflight
		if iv != nil {
			st.requeued = true
			st.inflight = nil
		}
		st.Unlock()
		if hook := testHookRequeueClaimed.Load(); hook != nil {
			(*hook)(cfg.Name)
		}
		if iv != nil {
			_ = write(MsgRequeue, EncodeRequeue(Requeue{
				Start: iv.Start, End: iv.End, Reason: "worker shutting down",
			}))
		}
		conn.Close()
	}()

	for {
		t, payload, err := ReadFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err // connection closed: master is done with us
		}
		nt.recv.Inc()
		switch t {
		case MsgPing:
			hb, err := DecodeHeartbeat(payload)
			if err != nil {
				sendErr(err)
				continue
			}
			if err := write(MsgPong, EncodeHeartbeat(hb)); err != nil {
				return err
			}
			nt.pongs.Inc()
		case MsgCorpus:
			ck, err := DecodeCorpusChunk(payload)
			if err != nil {
				sendErr(err)
				continue
			}
			if _, ok := corpora[ck.ID]; ok {
				continue // already assembled and verified; re-sends are idempotent
			}
			a, ok := asm[ck.ID]
			if !ok {
				if ck.Total == 0 || ck.Total > targetset.MaxEncoded {
					sendErr(fmt.Errorf("netproto: corpus %016x: bad total %d", ck.ID, ck.Total))
					continue
				}
				a = &corpusAsm{buf: make([]byte, 0, ck.Total), total: ck.Total}
				asm[ck.ID] = a
			}
			// Chunks must tile the blob in order; anything else aborts the
			// assembly so the master's retry starts clean.
			if ck.Total != a.total || ck.Offset != uint32(len(a.buf)) {
				delete(asm, ck.ID)
				sendErr(fmt.Errorf("netproto: corpus %016x: chunk at offset %d does not extend assembly of %d/%d bytes",
					ck.ID, ck.Offset, len(a.buf), a.total))
				continue
			}
			a.buf = append(a.buf, ck.Data...)
			if uint32(len(a.buf)) < a.total {
				continue
			}
			delete(asm, ck.ID)
			if got := specHash(a.buf); got != ck.ID {
				sendErr(fmt.Errorf("netproto: corpus content hashes to %016x, chunks said %016x", got, ck.ID))
				continue
			}
			set, err := targetset.Decode(a.buf)
			if err != nil {
				sendErr(err)
				continue
			}
			corpora[ck.ID] = set
		case MsgSpec:
			sf, err := DecodeSpec(payload)
			if err != nil {
				sendErr(err)
				continue
			}
			job, err := sf.Spec.Build()
			if err != nil {
				sendErr(err)
				continue
			}
			if sf.Spec.CorpusID != 0 {
				set, ok := corpora[sf.Spec.CorpusID]
				if !ok {
					sendErr(fmt.Errorf("netproto: spec %016x references corpus %016x, not transferred on this connection", sf.ID, sf.Spec.CorpusID))
					continue
				}
				job.Corpus = set
			}
			specs[sf.ID] = job
		case MsgTune:
			req, err := DecodeTuneRequest(payload)
			if err != nil {
				sendErr(err)
				continue
			}
			job, ok := specs[req.SpecID]
			if !ok {
				sendErr(unknownSpec(req.SpecID))
				continue
			}
			st.Lock()
			if st.busy {
				st.Unlock()
				sendErr(errors.New("netproto: request while another is in flight"))
				continue
			}
			st.busy = true
			st.Unlock()
			go func() {
				res, err := tuneLocal(serveCtx, job, cfg)
				st.Lock()
				st.busy = false
				st.Unlock()
				if err != nil {
					sendErr(err)
					return
				}
				if err := write(MsgTuneResult, EncodeTuneResult(res)); err != nil {
					conn.Close()
				}
			}()
		case MsgSearch:
			req, err := DecodeSearch(payload)
			if err != nil {
				sendErr(err)
				continue
			}
			job, ok := specs[req.SpecID]
			if !ok {
				sendErr(unknownSpec(req.SpecID))
				continue
			}
			iv := keyspace.Interval{Start: req.Start, End: req.End}
			st.Lock()
			if st.busy {
				st.Unlock()
				sendErr(errors.New("netproto: request while another is in flight"))
				continue
			}
			// busy and inflight are set together: from this instant a
			// cancellation finds the interval and requeues it — there is no
			// window where the worker is busy with nothing to hand back.
			// The shrink state is installed in the same critical section,
			// so a MsgShrink can never race a window where the search is
			// accepted but untargetable.
			st.busy = true
			st.inflight = &iv
			ss := &shrinkState{seq: req.Seq}
			if n, ok := iv.Len64(); ok {
				ss.limit = n
			} else {
				ss = nil // interval beyond uint64: no shrink support
			}
			st.search = ss
			st.Unlock()
			if hook := testHookSearchBegin.Load(); hook != nil {
				(*hook)(cfg.Name)
			}
			progress := func(done uint64) {
				if write(MsgProgress, EncodeProgress(Progress{Seq: req.Seq, Done: done})) == nil {
					nt.progress.Inc()
				}
			}
			go func() {
				res, err := searchLocal(serveCtx, job, req, cfg, ss, progress)
				if hook := testHookSearchDone.Load(); hook != nil {
					(*hook)(cfg.Name)
				}
				st.Lock()
				requeued := st.requeued
				st.requeued = false
				st.busy = false
				st.inflight = nil
				st.search = nil
				st.Unlock()
				if requeued {
					return // the shutdown path already sent MsgRequeue
				}
				if err != nil {
					if serveCtx.Err() == nil {
						sendErr(err)
					}
					return
				}
				if err := write(MsgSearchResult, EncodeSearchResult(res)); err != nil {
					conn.Close()
				}
			}()
		case MsgShrink:
			sk, err := DecodeShrink(payload)
			if err != nil {
				sendErr(err)
				continue
			}
			st.Lock()
			ss := st.search
			st.Unlock()
			ack := ShrinkAck{Seq: sk.Seq}
			if ss != nil && ss.seq == sk.Seq {
				ack.Keep, ack.OK = ss.shrink(sk.Keep)
			}
			if err := write(MsgShrinkAck, EncodeShrinkAck(ack)); err != nil {
				return err
			}
			if ack.OK {
				nt.shrinks.Inc()
			}
		default:
			sendErr(fmt.Errorf("netproto: unexpected message type %d", t))
		}
	}
}

func unknownSpec(id uint64) error {
	return fmt.Errorf("netproto: unknown spec %016x (not registered on this connection)", id)
}

func tuneLocal(ctx context.Context, job *cracker.Job, cfg WorkerConfig) (TuneResult, error) {
	factory, err := job.TestFactory()
	if err != nil {
		return TuneResult{}, err
	}
	size, ok := job.Space.Size64()
	if !ok {
		size = 1 << 62
	}
	bench := func(n uint64) time.Duration {
		if n > size {
			n = size
		}
		start := time.Now()
		iv := keyspace.NewInterval(0, int64(n))
		_, err := core.SearchEach(ctx, core.KeyspaceFactory(job.Space), iv, factory,
			core.Options{Workers: cfg.Workers})
		if err != nil {
			return time.Hour // poison: tuning converges immediately
		}
		return time.Since(start)
	}
	tuneStart := cfg.TuneStart
	if tuneStart == 0 {
		tuneStart = 4096
	}
	tn := core.Tune(bench, core.TuneOptions{
		Start:            tuneStart,
		TargetEfficiency: cfg.TuneTarget,
		MaxBatch:         size,
	})
	return TuneResult{MinBatch: tn.MinBatch, Throughput: tn.Throughput}, nil
}

// searchLocal exhausts the requested interval in ProgressBatch-sized
// sub-searches. Between batches it honors the shrink state's limit —
// lowered by the read loop on MsgShrink — sends MsgProgress marks at
// the request's cadence, and applies the throttle. Tested is therefore
// exactly the (possibly shrunk) limit, and every reported progress mark
// names fully-tested keys only.
func searchLocal(ctx context.Context, job *cracker.Job, req SearchRequest, cfg WorkerConfig, ss *shrinkState, progress func(done uint64)) (SearchResult, error) {
	opts := core.Options{Workers: cfg.Workers, Telemetry: cfg.Telemetry}
	start := time.Now()
	if ss == nil {
		// Interval wider than uint64: no batch accounting (and no shrink
		// support — the read loop refuses MsgShrink while this runs).
		iv := keyspace.Interval{Start: req.Start, End: req.End}
		res, err := cracker.CrackAll(ctx, job, iv, opts)
		if err != nil {
			return SearchResult{}, err
		}
		return SearchResult{Found: res.Solutions, Tested: res.Tested, Elapsed: time.Since(start)}, nil
	}

	batch := cfg.progressBatch()
	lastMark := start
	var found [][]byte
	var done uint64
	for {
		ss.mu.Lock()
		if done >= ss.limit {
			ss.mu.Unlock()
			break
		}
		next := done + batch
		if next > ss.limit {
			next = ss.limit
		}
		ss.busyTo = next
		ss.mu.Unlock()

		sub := keyspace.Interval{
			Start: new(big.Int).Add(req.Start, new(big.Int).SetUint64(done)),
			End:   new(big.Int).Add(req.Start, new(big.Int).SetUint64(next)),
		}
		res, err := cracker.CrackAll(ctx, job, sub, opts)
		if err != nil {
			return SearchResult{}, err
		}
		found = append(found, res.Solutions...)
		done = next
		ss.mu.Lock()
		ss.done = done
		last := done >= ss.limit
		ss.mu.Unlock()

		if d := cfg.Throttle; d > 0 && !last {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return SearchResult{}, ctx.Err()
			case <-t.C:
			}
		}
		if p := req.ProgressEvery; p > 0 && !last && time.Since(lastMark) >= p {
			progress(done)
			lastMark = time.Now()
		}
	}
	return SearchResult{Found: found, Tested: done, Elapsed: time.Since(start)}, nil
}

// Dial connects to a master and serves until done.
func Dial(ctx context.Context, addr string, cfg WorkerConfig) error {
	conn, err := cfg.dial(ctx, addr)
	if err != nil {
		return err
	}
	return ServeConn(ctx, conn, cfg)
}

// DialRetry keeps a worker attached to a master across connection loss:
// dial, serve, and on failure re-dial with the policy's backoff. The
// attempt counter resets every time registration succeeds, so a
// long-lived worker survives any number of transient outages but gives
// up after MaxAttempts consecutive failures to (re)join.
func DialRetry(ctx context.Context, addr string, cfg WorkerConfig, policy RetryPolicy) error {
	attempt := 0
	var lastErr error
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		conn, err := cfg.dial(ctx, addr)
		if err == nil {
			err = serveConn(ctx, conn, cfg, func() { attempt = 0 })
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = err
		attempt++
		if attempt >= policy.attempts() {
			return fmt.Errorf("netproto: worker %s giving up after %d attempts: %w", cfg.Name, attempt, lastErr)
		}
		cfg.Telemetry.Counter(telemetry.MetricNetRetries).Inc()
		if lastErr != nil {
			cfg.Telemetry.Emit(telemetry.EventRetry, cfg.Name, uint64(attempt), lastErr.Error())
		}
		if serr := policy.Sleep(ctx, attempt-1); serr != nil {
			return serr
		}
	}
}
