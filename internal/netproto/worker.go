package netproto

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"keysearch/internal/core"
	"keysearch/internal/cracker"
	"keysearch/internal/keyspace"
	"keysearch/internal/telemetry"
)

// WorkerConfig configures a worker process.
type WorkerConfig struct {
	// Name identifies this worker to the master. Rejoins are keyed by
	// name: a worker that reconnects under the same name resumes the
	// master-side identity it had before the connection broke.
	Name string
	// Workers is the local goroutine count (0 = NumCPU).
	Workers int
	// TuneStart and TuneTarget parameterize the local tuning step.
	TuneStart  uint64
	TuneTarget float64
	// WriteTimeout bounds every frame write (0 = 10s).
	WriteTimeout time.Duration
	// JoinTimeout bounds the registration handshake (0 = 30s).
	JoinTimeout time.Duration
	// Dialer, when non-nil, replaces the default TCP dialer in Dial and
	// DialRetry — the splice point for the chaos harness and for future
	// TLS transport.
	Dialer func(ctx context.Context, network, addr string) (net.Conn, error)
	// Telemetry, when non-nil, receives the worker-side protocol metrics
	// (frames sent/received, pings answered, reconnect attempts) and is
	// threaded into the local search so core.tested / core.rate reflect
	// the candidates this worker evaluates.
	Telemetry *telemetry.Registry
}

func (cfg WorkerConfig) dial(ctx context.Context, addr string) (net.Conn, error) {
	if cfg.Dialer != nil {
		return cfg.Dialer(ctx, "tcp", addr)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

func (cfg WorkerConfig) writeTimeout() time.Duration {
	if cfg.WriteTimeout <= 0 {
		return 10 * time.Second
	}
	return cfg.WriteTimeout
}

func (cfg WorkerConfig) joinTimeout() time.Duration {
	if cfg.JoinTimeout <= 0 {
		return 30 * time.Second
	}
	return cfg.JoinTimeout
}

// ServeConn runs the worker side of the protocol on an established
// connection: register, receive the job, then answer tune, search and
// ping requests until the connection closes or ctx is cancelled.
//
// Requests execute on a separate goroutine so the read loop keeps
// answering MsgPing with MsgPong while a long search occupies the cores —
// that is what distinguishes this worker from a dead one on the master's
// side. If ctx is cancelled while a search is in flight, the worker hands
// the interval back with MsgRequeue (best effort) before hanging up, so
// the master requeues it without waiting for a heartbeat timeout.
func ServeConn(ctx context.Context, conn net.Conn, cfg WorkerConfig) error {
	return serveConn(ctx, conn, cfg, nil)
}

func serveConn(ctx context.Context, conn net.Conn, cfg WorkerConfig, onReady func()) error {
	defer conn.Close()

	nt := newNetTelemetry(cfg.Telemetry)
	var wmu sync.Mutex
	write := func(t MsgType, p []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		_ = conn.SetWriteDeadline(time.Now().Add(cfg.writeTimeout()))
		err := WriteFrame(conn, t, p)
		_ = conn.SetWriteDeadline(time.Time{})
		if err == nil {
			nt.sent.Inc()
		}
		return err
	}
	sendErr := func(err error) { _ = write(MsgError, []byte(err.Error())) }

	if err := write(MsgHello, EncodeHello(Hello{Version: Version, Name: cfg.Name})); err != nil {
		return err
	}
	_ = conn.SetReadDeadline(time.Now().Add(cfg.joinTimeout()))
	t, payload, err := ReadFrame(conn)
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil {
		return err
	}
	if t != MsgJob {
		return fmt.Errorf("netproto: expected job, got message type %d", t)
	}
	spec, err := DecodeJob(payload)
	if err != nil {
		sendErr(err)
		return err
	}
	job, err := spec.Build()
	if err != nil {
		sendErr(err)
		return err
	}
	if onReady != nil {
		onReady()
	}

	// st tracks the single in-flight request (the protocol is strict
	// request/response; pings are the only interleaved frames).
	var st struct {
		sync.Mutex
		busy     bool
		inflight *keyspace.Interval
	}
	serveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-serveCtx.Done()
		if ctx.Err() == nil {
			return // normal return path, connection already going down
		}
		// Local shutdown: hand back the in-flight interval, then hang up.
		st.Lock()
		iv := st.inflight
		st.Unlock()
		if iv != nil {
			_ = write(MsgRequeue, EncodeRequeue(Requeue{
				Start: iv.Start, End: iv.End, Reason: "worker shutting down",
			}))
		}
		conn.Close()
	}()

	for {
		t, payload, err := ReadFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err // connection closed: master is done with us
		}
		nt.recv.Inc()
		switch t {
		case MsgPing:
			hb, err := DecodeHeartbeat(payload)
			if err != nil {
				sendErr(err)
				continue
			}
			if err := write(MsgPong, EncodeHeartbeat(hb)); err != nil {
				return err
			}
			nt.pongs.Inc()
		case MsgTune:
			if !beginOp(&st.Mutex, &st.busy) {
				sendErr(errors.New("netproto: request while another is in flight"))
				continue
			}
			go func() {
				res, err := tuneLocal(serveCtx, job, cfg)
				st.Lock()
				st.busy = false
				st.Unlock()
				if err != nil {
					sendErr(err)
					return
				}
				if err := write(MsgTuneResult, EncodeTuneResult(res)); err != nil {
					conn.Close()
				}
			}()
		case MsgSearch:
			req, err := DecodeSearch(payload)
			if err != nil {
				sendErr(err)
				continue
			}
			iv := keyspace.Interval{Start: req.Start, End: req.End}
			if !beginOp(&st.Mutex, &st.busy) {
				sendErr(errors.New("netproto: request while another is in flight"))
				continue
			}
			st.Lock()
			st.inflight = &iv
			st.Unlock()
			go func() {
				res, err := searchLocal(serveCtx, job, req, cfg)
				st.Lock()
				st.busy = false
				st.inflight = nil
				st.Unlock()
				if err != nil {
					if serveCtx.Err() == nil {
						sendErr(err)
					}
					return
				}
				if err := write(MsgSearchResult, EncodeSearchResult(res)); err != nil {
					conn.Close()
				}
			}()
		default:
			sendErr(fmt.Errorf("netproto: unexpected message type %d", t))
		}
	}
}

func beginOp(mu *sync.Mutex, busy *bool) bool {
	mu.Lock()
	defer mu.Unlock()
	if *busy {
		return false
	}
	*busy = true
	return true
}

func tuneLocal(ctx context.Context, job *cracker.Job, cfg WorkerConfig) (TuneResult, error) {
	factory, err := job.TestFactory()
	if err != nil {
		return TuneResult{}, err
	}
	size, ok := job.Space.Size64()
	if !ok {
		size = 1 << 62
	}
	bench := func(n uint64) time.Duration {
		if n > size {
			n = size
		}
		start := time.Now()
		iv := keyspace.NewInterval(0, int64(n))
		_, err := core.SearchEach(ctx, core.KeyspaceFactory(job.Space), iv, factory,
			core.Options{Workers: cfg.Workers})
		if err != nil {
			return time.Hour // poison: tuning converges immediately
		}
		return time.Since(start)
	}
	tuneStart := cfg.TuneStart
	if tuneStart == 0 {
		tuneStart = 4096
	}
	tn := core.Tune(bench, core.TuneOptions{
		Start:            tuneStart,
		TargetEfficiency: cfg.TuneTarget,
		MaxBatch:         size,
	})
	return TuneResult{MinBatch: tn.MinBatch, Throughput: tn.Throughput}, nil
}

func searchLocal(ctx context.Context, job *cracker.Job, req SearchRequest, cfg WorkerConfig) (SearchResult, error) {
	iv := keyspace.Interval{Start: req.Start, End: req.End}
	start := time.Now()
	res, err := cracker.CrackAll(ctx, job, iv, core.Options{Workers: cfg.Workers, Telemetry: cfg.Telemetry})
	if err != nil {
		return SearchResult{}, err
	}
	return SearchResult{Found: res.Solutions, Tested: res.Tested, Elapsed: time.Since(start)}, nil
}

// Dial connects to a master and serves until done.
func Dial(ctx context.Context, addr string, cfg WorkerConfig) error {
	conn, err := cfg.dial(ctx, addr)
	if err != nil {
		return err
	}
	return ServeConn(ctx, conn, cfg)
}

// DialRetry keeps a worker attached to a master across connection loss:
// dial, serve, and on failure re-dial with the policy's backoff. The
// attempt counter resets every time registration succeeds, so a
// long-lived worker survives any number of transient outages but gives
// up after MaxAttempts consecutive failures to (re)join.
func DialRetry(ctx context.Context, addr string, cfg WorkerConfig, policy RetryPolicy) error {
	attempt := 0
	var lastErr error
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		conn, err := cfg.dial(ctx, addr)
		if err == nil {
			err = serveConn(ctx, conn, cfg, func() { attempt = 0 })
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = err
		attempt++
		if attempt >= policy.attempts() {
			return fmt.Errorf("netproto: worker %s giving up after %d attempts: %w", cfg.Name, attempt, lastErr)
		}
		cfg.Telemetry.Counter(telemetry.MetricNetRetries).Inc()
		if lastErr != nil {
			cfg.Telemetry.Emit(telemetry.EventRetry, cfg.Name, uint64(attempt), lastErr.Error())
		}
		if serr := policy.Sleep(ctx, attempt-1); serr != nil {
			return serr
		}
	}
}
