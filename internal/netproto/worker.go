package netproto

import (
	"context"
	"fmt"
	"net"
	"time"

	"keysearch/internal/core"
	"keysearch/internal/cracker"
	"keysearch/internal/keyspace"
)

// WorkerConfig configures a worker process.
type WorkerConfig struct {
	// Name identifies this worker to the master.
	Name string
	// Workers is the local goroutine count (0 = NumCPU).
	Workers int
	// TuneStart and TuneTarget parameterize the local tuning step.
	TuneStart  uint64
	TuneTarget float64
}

// ServeConn runs the worker side of the protocol on an established
// connection: register, receive the job, then answer tune and search
// requests until the connection closes or ctx is cancelled.
func ServeConn(ctx context.Context, conn net.Conn, cfg WorkerConfig) error {
	defer conn.Close()
	if err := WriteFrame(conn, MsgHello, EncodeHello(Hello{Version: Version, Name: cfg.Name})); err != nil {
		return err
	}

	t, payload, err := ReadFrame(conn)
	if err != nil {
		return err
	}
	if t != MsgJob {
		return fmt.Errorf("netproto: expected job, got message type %d", t)
	}
	spec, err := DecodeJob(payload)
	if err != nil {
		sendError(conn, err)
		return err
	}
	job, err := spec.Build()
	if err != nil {
		sendError(conn, err)
		return err
	}

	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		t, payload, err := ReadFrame(conn)
		if err != nil {
			return err // connection closed: master is done with us
		}
		switch t {
		case MsgTune:
			res, err := tuneLocal(ctx, job, cfg)
			if err != nil {
				sendError(conn, err)
				continue
			}
			if err := WriteFrame(conn, MsgTuneResult, EncodeTuneResult(res)); err != nil {
				return err
			}
		case MsgSearch:
			req, err := DecodeSearch(payload)
			if err != nil {
				sendError(conn, err)
				continue
			}
			res, err := searchLocal(ctx, job, req, cfg)
			if err != nil {
				sendError(conn, err)
				continue
			}
			if err := WriteFrame(conn, MsgSearchResult, EncodeSearchResult(res)); err != nil {
				return err
			}
		default:
			sendError(conn, fmt.Errorf("netproto: unexpected message type %d", t))
		}
	}
}

func sendError(conn net.Conn, err error) {
	_ = WriteFrame(conn, MsgError, []byte(err.Error()))
}

func tuneLocal(ctx context.Context, job *cracker.Job, cfg WorkerConfig) (TuneResult, error) {
	factory, err := job.TestFactory()
	if err != nil {
		return TuneResult{}, err
	}
	size, ok := job.Space.Size64()
	if !ok {
		size = 1 << 62
	}
	bench := func(n uint64) time.Duration {
		if n > size {
			n = size
		}
		start := time.Now()
		iv := keyspace.NewInterval(0, int64(n))
		_, err := core.SearchEach(ctx, core.KeyspaceFactory(job.Space), iv, factory,
			core.Options{Workers: cfg.Workers})
		if err != nil {
			return time.Hour // poison: tuning converges immediately
		}
		return time.Since(start)
	}
	tuneStart := cfg.TuneStart
	if tuneStart == 0 {
		tuneStart = 4096
	}
	tn := core.Tune(bench, core.TuneOptions{
		Start:            tuneStart,
		TargetEfficiency: cfg.TuneTarget,
		MaxBatch:         size,
	})
	return TuneResult{MinBatch: tn.MinBatch, Throughput: tn.Throughput}, nil
}

func searchLocal(ctx context.Context, job *cracker.Job, req SearchRequest, cfg WorkerConfig) (SearchResult, error) {
	iv := keyspace.Interval{Start: req.Start, End: req.End}
	start := time.Now()
	res, err := cracker.CrackAll(ctx, job, iv, core.Options{Workers: cfg.Workers})
	if err != nil {
		return SearchResult{}, err
	}
	return SearchResult{Found: res.Solutions, Tested: res.Tested, Elapsed: time.Since(start)}, nil
}

// Dial connects to a master and serves until done.
func Dial(ctx context.Context, addr string, cfg WorkerConfig) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	return ServeConn(ctx, conn, cfg)
}
