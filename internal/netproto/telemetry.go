package netproto

import (
	"sync"
	"time"

	"keysearch/internal/telemetry"
)

// netTelemetry caches the protocol's metric handles so the frame paths
// pay registry lookups once per connection, not once per frame. Both
// sides of the protocol use it: the master counts pings sent and pongs
// received (and their round trips), the worker the mirror image. All
// handles are nil when telemetry is disabled; the telemetry package's
// nil-receiver methods keep every call a single branch.
type netTelemetry struct {
	reg        *telemetry.Registry
	sent       *telemetry.Counter   // frames written
	recv       *telemetry.Counter   // frames read
	pings      *telemetry.Counter   // MsgPing frames
	pongs      *telemetry.Counter   // MsgPong frames
	retries    *telemetry.Counter   // call retry attempts after transport failures
	reconnects *telemetry.Counter   // rejoins replacing a broken connection
	requeues   *telemetry.Counter   // MsgRequeue hand-backs
	progress   *telemetry.Counter   // MsgProgress marks sent (worker) / applied (master)
	shrinks    *telemetry.Counter   // shrink handshakes honored (acked OK)
	rtt        *telemetry.Histogram // ping → pong round trip, ns
}

func newNetTelemetry(reg *telemetry.Registry) *netTelemetry {
	nt := &netTelemetry{reg: reg}
	if reg == nil {
		return nt
	}
	nt.sent = reg.Counter(telemetry.MetricNetFramesSent)
	nt.recv = reg.Counter(telemetry.MetricNetFramesRecv)
	nt.pings = reg.Counter(telemetry.MetricNetPings)
	nt.pongs = reg.Counter(telemetry.MetricNetPongs)
	nt.retries = reg.Counter(telemetry.MetricNetRetries)
	nt.reconnects = reg.Counter(telemetry.MetricNetReconnects)
	nt.requeues = reg.Counter(telemetry.MetricNetRequeues)
	nt.progress = reg.Counter(telemetry.MetricNetProgress)
	nt.shrinks = reg.Counter(telemetry.MetricNetShrinks)
	nt.rtt = reg.Histogram(telemetry.MetricNetPingRTT)
	return nt
}

// pingClock matches pongs back to the pings that caused them by sequence
// number, yielding the round-trip time. Entries whose pong never arrives
// (the connection died in between) are evicted once they fall a window
// behind the newest ping, so the map stays small on flappy links.
type pingClock struct {
	mu   sync.Mutex
	sent map[uint64]time.Time
}

func newPingClock() *pingClock {
	return &pingClock{sent: make(map[uint64]time.Time)}
}

const pingClockWindow = 64

func (p *pingClock) sentAt(seq uint64) {
	p.mu.Lock()
	p.sent[seq] = time.Now()
	if seq > pingClockWindow {
		delete(p.sent, seq-pingClockWindow)
	}
	p.mu.Unlock()
}

// rtt returns the round trip for seq, or false if the ping was not seen
// (stale pong from a previous call, or telemetry raced the write).
func (p *pingClock) rtt(seq uint64) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	at, ok := p.sent[seq]
	if !ok {
		return 0, false
	}
	delete(p.sent, seq)
	return time.Since(at), true
}
