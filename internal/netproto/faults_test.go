package netproto

import (
	"context"
	"errors"
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	"keysearch/internal/dispatch"
	"keysearch/internal/keyspace"
	"keysearch/internal/netproto/chaos"
)

// fastRetry keeps fault detection snappy in tests while staying
// deterministic (no jitter).
var fastRetry = RetryPolicy{MaxAttempts: 2, BaseDelay: 20 * time.Millisecond, MaxDelay: 100 * time.Millisecond}

// chaosDialer returns a WorkerConfig dialer that applies plan to the
// first connection only; reconnections are clean.
func chaosDialer(plan chaos.Plan) func(ctx context.Context, network, addr string) (net.Conn, error) {
	var mu sync.Mutex
	first := true
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		mu.Lock()
		p := chaos.Plan{}
		if first {
			p, first = plan, false
		}
		mu.Unlock()
		return chaos.Dial(ctx, network, addr, p)
	}
}

// searchSpace runs an exhaustive dispatch over the whole test space.
func searchSpace(ctx context.Context, t *testing.T, d *dispatch.Dispatcher) *dispatch.Report {
	t.Helper()
	space, _ := keyspace.New(keyspace.Lower, 1, 3, keyspace.PrefixMajor)
	rep, err := d.Search(ctx, keyspace.Interval{Start: big.NewInt(0), End: space.Size()})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	return rep
}

func spaceSize(t *testing.T) uint64 {
	t.Helper()
	space, _ := keyspace.New(keyspace.Lower, 1, 3, keyspace.PrefixMajor)
	n, _ := keyspace.Interval{Start: big.NewInt(0), End: space.Size()}.Len64()
	return n
}

// TestClusterSurvivesWorkerDeath is the headline chaos test: 3 workers, a
// seeded schedule severs one mid-search (after its 5th write — in the
// middle of its first search-result frame), and the search must still
// find the key with the identical report a fault-free run produces. The
// exact Tested count proves no interval is counted twice: the only
// re-searched work is the requeued in-flight chunk, whose first partial
// pass was never gathered.
func TestClusterSurvivesWorkerDeath(t *testing.T) {
	run := func(t *testing.T, inject bool) (*dispatch.Report, []string) {
		spec := testJob(t, "zzz") // last key: the space must be fully searched
		m, err := NewMaster("127.0.0.1:0", MasterOptions{
			Heartbeat: -1, // keep the worker write schedule exact
			Retry:     fastRetry,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()

		for i := 0; i < 3; i++ {
			cfg := WorkerConfig{Name: "worker-" + string(rune('A'+i)), Workers: 1, TuneStart: 512}
			if inject && i == 1 {
				// Writes: hello (hdr+payload), tune result (hdr+payload),
				// then sever right after the header of the first search
				// result — the master sees a truncated frame.
				cfg.Dialer = chaosDialer(chaos.Plan{SeverAfterWrites: 5, Mode: chaos.Close})
			}
			go func() { _ = Dial(ctx, m.Addr(), cfg) }()
		}
		workers, err := m.AcceptWorkers(ctx, 3)
		if err != nil {
			t.Fatal(err)
		}

		var mu sync.Mutex
		var requeued []string
		d := dispatch.NewDispatcher("chaos-root", dispatch.Options{
			MaxChunk: 1024, // many rounds per worker: the sever lands mid-search
			OnRequeue: func(worker string, iv keyspace.Interval, cause error) {
				mu.Lock()
				requeued = append(requeued, worker)
				mu.Unlock()
			},
		}, BindWorkers(spec, workers)...)
		rep := searchSpace(ctx, t, d)
		mu.Lock()
		defer mu.Unlock()
		return rep, append([]string(nil), requeued...)
	}

	clean, cleanRequeues := run(t, false)
	if len(cleanRequeues) != 0 {
		t.Fatalf("fault-free run requeued: %v", cleanRequeues)
	}
	faulty, requeues := run(t, true)

	if len(requeues) == 0 {
		t.Fatal("injected sever produced no requeue")
	}
	for _, w := range requeues {
		if w != "worker-B" {
			t.Errorf("requeue charged to %s, want worker-B", w)
		}
	}
	// The recovery must be invisible in the result: same key, same exact
	// tested count (every identifier gathered exactly once).
	if len(clean.Found) != 1 || string(clean.Found[0]) != "zzz" {
		t.Fatalf("clean run found %q", clean.Found)
	}
	if len(faulty.Found) != 1 || string(faulty.Found[0]) != "zzz" {
		t.Fatalf("faulty run found %q", faulty.Found)
	}
	if want := spaceSize(t); clean.Tested != want || faulty.Tested != want {
		t.Errorf("tested: clean=%d faulty=%d want=%d", clean.Tested, faulty.Tested, want)
	}
}

// TestWorkerReconnectsAndRejoins: the ONLY worker loses its connection
// mid-search; DialRetry re-dials, the master re-binds the fresh
// connection to the same worker identity inside the retry window, and
// the retried call completes — no dispatcher-level requeue, no failure.
func TestWorkerReconnectsAndRejoins(t *testing.T) {
	spec := testJob(t, "net")
	m, err := NewMaster("127.0.0.1:0", MasterOptions{
		Heartbeat: -1,
		Retry:     RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cfg := WorkerConfig{
		Name: "phoenix", Workers: 1, TuneStart: 512,
		Dialer: chaosDialer(chaos.Plan{SeverAfterWrites: 5, Mode: chaos.Close}),
	}
	go func() {
		_ = DialRetry(ctx, m.Addr(), cfg, RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond})
	}()
	workers, err := m.AcceptWorkers(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}

	requeues := 0
	d := dispatch.NewDispatcher("rejoin-root", dispatch.Options{
		MaxSolutions: 1,
		MaxChunk:     4096,
		OnRequeue:    func(string, keyspace.Interval, error) { requeues++ },
	}, BindWorkers(spec, workers)...)
	space, _ := keyspace.New(keyspace.Lower, 1, 3, keyspace.PrefixMajor)
	rep, err := d.Search(ctx, keyspace.Interval{Start: big.NewInt(0), End: space.Size()})
	if err != nil {
		t.Fatalf("search failed despite reconnect: %v", err)
	}
	if len(rep.Found) == 0 || string(rep.Found[0]) != "net" {
		t.Errorf("found %q", rep.Found)
	}
	if requeues != 0 {
		t.Errorf("reconnect within the retry window still requeued %d chunks", requeues)
	}
}

// TestHeartbeatDetectsBlackhole: a partitioned worker (writes vanish,
// reads hang — no FIN ever reaches the master) is only detectable by
// heartbeat timeout. The master must declare it dead, requeue its
// interval and finish on the survivor.
func TestHeartbeatDetectsBlackhole(t *testing.T) {
	spec := testJob(t, "zzz")
	m, err := NewMaster("127.0.0.1:0", MasterOptions{
		Heartbeat:        50 * time.Millisecond,
		HeartbeatTimeout: 300 * time.Millisecond,
		Retry:            fastRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	victimCfg := WorkerConfig{
		Name: "victim", Workers: 1, TuneStart: 512,
		// Sever into a blackhole right after the tune result: the first
		// search request is swallowed silently.
		Dialer: chaosDialer(chaos.Plan{SeverAfterWrites: 4, Mode: chaos.Blackhole}),
	}
	go func() { _ = Dial(ctx, m.Addr(), victimCfg) }()
	go func() { _ = Dial(ctx, m.Addr(), WorkerConfig{Name: "survivor", Workers: 2, TuneStart: 512}) }()

	workers, err := m.AcceptWorkers(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var requeued []string
	d := dispatch.NewDispatcher("blackhole-root", dispatch.Options{
		MaxChunk: 2048,
		OnRequeue: func(worker string, iv keyspace.Interval, cause error) {
			mu.Lock()
			requeued = append(requeued, worker)
			mu.Unlock()
		},
	}, BindWorkers(spec, workers)...)
	rep := searchSpace(ctx, t, d)

	if len(rep.Found) != 1 || string(rep.Found[0]) != "zzz" {
		t.Errorf("found %q", rep.Found)
	}
	if want := spaceSize(t); rep.Tested != want {
		t.Errorf("tested %d, want %d", rep.Tested, want)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(requeued) == 0 {
		t.Error("blackholed worker was never declared dead")
	}
	for _, w := range requeued {
		if w != "victim" {
			t.Errorf("requeue charged to %s, want victim", w)
		}
	}
}

// TestMasterRestartResumesFromCheckpoint: a master that dies mid-search
// must resume from its persisted checkpoint on a fresh process — skipping
// completed intervals — instead of restarting from zero.
func TestMasterRestartResumesFromCheckpoint(t *testing.T) {
	spec := testJob(t, "zzz")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// --- first master: search until a few checkpoints land, then "crash".
	m1, err := NewMaster("127.0.0.1:0", MasterOptions{Heartbeat: -1, Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	run1Ctx, run1Cancel := context.WithCancel(ctx)
	go func() { _ = Dial(run1Ctx, m1.Addr(), WorkerConfig{Name: "w1", Workers: 1, TuneStart: 512}) }()
	workers, err := m1.AcceptWorkers(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var latest []byte // what a real master persists to disk
	var snaps int
	d1 := dispatch.NewDispatcher("restart-1", dispatch.Options{
		MaxChunk: 1024,
		Checkpoint: func(cp *dispatch.Checkpoint) {
			data, err := cp.Marshal()
			if err != nil {
				return
			}
			mu.Lock()
			latest = data
			snaps++
			if snaps == 3 {
				run1Cancel() // crash the master mid-search
			}
			mu.Unlock()
		},
	}, BindWorkers(spec, workers)...)
	space, _ := keyspace.New(keyspace.Lower, 1, 3, keyspace.PrefixMajor)
	_, err = d1.Search(run1Ctx, keyspace.Interval{Start: big.NewInt(0), End: space.Size()})
	if err == nil {
		t.Fatal("crashed search reported success")
	}
	m1.Close()

	mu.Lock()
	data := append([]byte(nil), latest...)
	mu.Unlock()
	cp, err := dispatch.LoadCheckpoint(data)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	remaining := cp.RemainingKeys()
	if remaining.Sign() == 0 || remaining.Cmp(space.Size()) >= 0 {
		t.Fatalf("checkpoint remaining %v of %v: no mid-search progress", remaining, space.Size())
	}

	// --- second master: fresh process, fresh worker, resume.
	m2, err := NewMaster("127.0.0.1:0", MasterOptions{Heartbeat: -1, Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	go func() { _ = Dial(ctx, m2.Addr(), WorkerConfig{Name: "w2", Workers: 1, TuneStart: 512}) }()
	workers2, err := m2.AcceptWorkers(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2 := dispatch.NewDispatcher("restart-2", dispatch.Options{MaxChunk: 4096}, BindWorkers(spec, workers2)...)
	rep, err := d2.Resume(ctx, cp)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if len(rep.Found) != 1 || string(rep.Found[0]) != "zzz" {
		t.Errorf("resumed run found %q", rep.Found)
	}
	// The resumed report is seeded with the checkpoint's Tested count, so
	// an exact total proves the completed prefix was skipped, not redone.
	if want := spaceSize(t); rep.Tested != want {
		t.Errorf("resumed tested %d, want %d (completed intervals must be skipped)", rep.Tested, want)
	}
}

// TestMasterCloseUnblocksAccept: Close must fail a blocked AcceptWorkers
// with ErrMasterClosed (not a raw accept error) and hang up accepted
// worker connections.
func TestMasterCloseUnblocksAccept(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// One worker registers and is accepted.
	served := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", m.Addr())
		if err != nil {
			served <- err
			return
		}
		served <- ServeConn(ctx, conn, WorkerConfig{Name: "w", Workers: 1})
	}()
	if _, err := m.AcceptWorkers(ctx, 1); err != nil {
		t.Fatal(err)
	}

	// A second AcceptWorkers blocks; Close must unblock it distinctly.
	acceptErr := make(chan error, 1)
	go func() {
		_, err := m.AcceptWorkers(ctx, 1)
		acceptErr <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-acceptErr:
		if !errors.Is(err, ErrMasterClosed) {
			t.Errorf("AcceptWorkers after Close: %v, want ErrMasterClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AcceptWorkers still blocked after Close")
	}
	// The accepted worker's connection must have been closed too.
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("worker connection not closed by master Close")
	}
	if m.Close() != nil {
		t.Error("second Close not idempotent")
	}
}
