package chaos

import (
	"bytes"
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

func pipePair(t *testing.T, p Plan) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	c := Wrap(a, p)
	t.Cleanup(func() { c.Close(); b.Close() })
	return c, b
}

// TestSeverAfterWritesClose: the scheduled sever in Close mode must fail
// the faulty side and give the peer a prompt EOF.
func TestSeverAfterWritesClose(t *testing.T) {
	c, peer := pipePair(t, Plan{SeverAfterWrites: 2, Mode: Close})
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := peer.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := c.Write([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("two")); err != nil {
		t.Fatal(err) // the severing op itself succeeds
	}
	if _, err := c.Write([]byte("three")); !errors.Is(err, ErrSevered) {
		t.Errorf("post-sever write: %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrSevered) {
		t.Errorf("post-sever read: %v", err)
	}
	_, writes, severed := c.Stats()
	if writes != 2 || !severed {
		t.Errorf("stats: writes=%d severed=%v", writes, severed)
	}
}

// TestSeverDeterministic: the same plan severs at the same operation on
// every run.
func TestSeverDeterministic(t *testing.T) {
	for run := 0; run < 3; run++ {
		c, peer := pipePair(t, Plan{SeverAfterWrites: 3, Mode: Close})
		go func() {
			buf := make([]byte, 16)
			for {
				if _, err := peer.Read(buf); err != nil {
					return
				}
			}
		}()
		n := 0
		for i := 0; i < 10; i++ {
			if _, err := c.Write([]byte{byte(i)}); err != nil {
				break
			}
			n++
		}
		if n != 3 {
			t.Fatalf("run %d: severed after %d writes, want 3", run, n)
		}
	}
}

// TestBlackhole: a blackholed conn swallows writes and hangs reads until
// the deadline.
func TestBlackhole(t *testing.T) {
	c, _ := pipePair(t, Plan{Mode: Blackhole})
	c.Sever()
	if n, err := c.Write([]byte("vanishes")); n != 8 || err != nil {
		t.Errorf("blackholed write: n=%d err=%v", n, err)
	}
	_ = c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("blackholed read: %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("blackholed read returned before the deadline")
	}
}

// TestBlackholeUnblocksOnClose: with no deadline set, Close must unblock
// a hung blackhole read.
func TestBlackholeUnblocksOnClose(t *testing.T) {
	c, _ := pipePair(t, Plan{Mode: Blackhole})
	c.Sever()
	go func() {
		time.Sleep(20 * time.Millisecond)
		c.Close()
	}()
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Errorf("read after close: %v", err)
	}
}

// TestDropWritesDeterministic: the seeded drop stream is identical across
// runs and actually drops data.
func TestDropWritesDeterministic(t *testing.T) {
	pattern := func() []bool {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		c := Wrap(a, Plan{DropWriteProb: 0.5, Seed: 42})
		got := make(chan byte, 64)
		go func() {
			buf := make([]byte, 1)
			for {
				if _, err := b.Read(buf); err != nil {
					close(got)
					return
				}
				got <- buf[0]
			}
		}()
		var delivered []bool
		for i := 0; i < 16; i++ {
			if _, err := c.Write([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			select {
			case v := <-got:
				delivered = append(delivered, true)
				if int(v) != i {
					t.Fatalf("byte %d delivered as %d", i, v)
				}
			case <-time.After(20 * time.Millisecond):
				delivered = append(delivered, false)
			}
		}
		return delivered
	}
	first := pattern()
	second := pattern()
	var drops int
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("drop schedule differs at op %d: %v vs %v", i, first, second)
		}
		if !first[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(first) {
		t.Errorf("drop schedule degenerate: %d/%d dropped", drops, len(first))
	}
}

// TestDelayInjection: per-op delays are applied.
func TestDelayInjection(t *testing.T) {
	c, peer := pipePair(t, Plan{WriteDelay: 20 * time.Millisecond})
	go func() {
		buf := make([]byte, 4)
		peer.Read(buf)
	}()
	start := time.Now()
	if _, err := c.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("write delay not applied")
	}
}

// TestListenerSchedule: per-connection plans go to the right conns.
func TestListenerSchedule(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(inner, func(i int) Plan {
		if i == 1 {
			return Plan{SeverAfterWrites: 1, Mode: Close}
		}
		return Plan{}
	})
	defer ln.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io := make([]byte, 8)
				n, _ := conn.Read(io)
				conn.Write(io[:n]) // echo once
				conn.Write(io[:n]) // second write severs conn 1
				conn.Write(io[:n])
			}()
		}
	}()

	var peers []net.Conn
	for i := 0; i < 2; i++ {
		p, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		peers = append(peers, p)
		p.Write([]byte("hi"))
	}
	<-done

	// Healthy conn 0 echoes three times; severed conn 1 delivers once.
	p0 := make([]byte, 6)
	if _, err := readFull(peers[0], p0); err != nil || !bytes.Equal(p0, []byte("hihihi")) {
		t.Errorf("conn 0: %q %v", p0, err)
	}
	p1 := make([]byte, 6)
	n, _ := readFull(peers[1], p1)
	if n != 2 {
		t.Errorf("conn 1 delivered %d bytes, want 2 (then severed)", n)
	}
	conns := ln.Conns()
	if len(conns) != 2 {
		t.Fatalf("tracked %d conns", len(conns))
	}
	if _, _, severed := conns[1].Stats(); !severed {
		t.Error("conn 1 not severed")
	}
	if _, _, severed := conns[0].Stats(); severed {
		t.Error("conn 0 severed")
	}
}

func readFull(c net.Conn, buf []byte) (int, error) {
	c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
