// Package chaos provides a deterministic fault-injection harness for the
// netproto layer: a net.Conn wrapper that drops, delays, or severs a
// connection on a seeded schedule, plus listener/dialer adapters to
// splice it into either endpoint.
//
// Determinism is the point. A Plan is a pure schedule — operation counts
// and a seed — so a test that kills worker 2 after its 7th write does so
// on every run, and a recovery path is exercised by construction rather
// than by timing luck.
package chaos

import (
	"context"
	"errors"
	"net"
	"os"
	"sync"
	"time"
)

// Mode selects how a severed connection manifests to the peer.
type Mode int

const (
	// Close severs by closing the underlying connection: the peer sees
	// EOF/RST promptly. This models a crashed process.
	Close Mode = iota
	// Blackhole severs silently: local reads hang until the deadline and
	// writes vanish, while the peer sees nothing at all. This models a
	// network partition or a wedged host, and is the case that only a
	// heartbeat timeout can detect.
	Blackhole
)

// Plan is a deterministic fault schedule for one connection. The zero
// value injects nothing.
type Plan struct {
	// SeverAfterReads severs the connection after this many successful
	// Read calls (0 = never).
	SeverAfterReads int
	// SeverAfterWrites severs after this many successful Write calls
	// (0 = never). Note the framing layer issues two writes per frame
	// (header, payload).
	SeverAfterWrites int
	// Mode selects Close or Blackhole severing.
	Mode Mode
	// ReadDelay and WriteDelay are injected before each operation.
	ReadDelay  time.Duration
	WriteDelay time.Duration
	// DropWriteProb silently discards each write with this probability,
	// drawn from the deterministic Seed stream (the bytes never reach the
	// peer but the caller sees success).
	DropWriteProb float64
	// Seed selects the deterministic random stream for DropWriteProb.
	Seed uint64
}

// ErrSevered is returned by operations on a connection the plan has
// severed in Close mode.
var ErrSevered = errors.New("chaos: connection severed")

// Conn wraps a net.Conn with fault injection. It is safe for the usual
// one-reader/one-writer concurrent use of net.Conn.
type Conn struct {
	inner net.Conn
	plan  Plan

	mu           sync.Mutex
	reads        int
	writes       int
	severed      bool
	rng          uint64
	readDeadline time.Time

	closeOnce sync.Once
	closedCh  chan struct{}
}

// Wrap applies a fault plan to a connection.
func Wrap(c net.Conn, p Plan) *Conn {
	return &Conn{inner: c, plan: p, rng: p.Seed | 1, closedCh: make(chan struct{})}
}

// next steps the deterministic random stream (xorshift64).
func (c *Conn) next() float64 {
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	return float64(c.rng>>11) / float64(1<<53)
}

// Sever triggers the plan's sever mode immediately, regardless of
// operation counts.
func (c *Conn) Sever() {
	c.mu.Lock()
	c.severed = true
	mode := c.plan.Mode
	c.mu.Unlock()
	if mode == Close {
		_ = c.inner.Close()
	}
}

func (c *Conn) severedNow() (bool, Mode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.severed, c.plan.Mode
}

// blackholeRead blocks like a partitioned socket: until the read
// deadline, or forever if none is set, or until Close.
func (c *Conn) blackholeRead() (int, error) {
	c.mu.Lock()
	dl := c.readDeadline
	c.mu.Unlock()
	var timeout <-chan time.Time
	if !dl.IsZero() {
		t := time.NewTimer(time.Until(dl))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-timeout:
		return 0, os.ErrDeadlineExceeded
	case <-c.closedCh:
		return 0, net.ErrClosed
	}
}

// Read forwards to the inner connection, applying delays and the sever
// schedule.
func (c *Conn) Read(b []byte) (int, error) {
	if sev, mode := c.severedNow(); sev {
		if mode == Blackhole {
			return c.blackholeRead()
		}
		return 0, ErrSevered
	}
	if c.plan.ReadDelay > 0 {
		if err := c.sleep(c.plan.ReadDelay); err != nil {
			return 0, err
		}
	}
	n, err := c.inner.Read(b)
	if err == nil {
		c.mu.Lock()
		c.reads++
		hit := c.plan.SeverAfterReads > 0 && c.reads >= c.plan.SeverAfterReads
		c.mu.Unlock()
		if hit {
			c.Sever()
		}
	}
	return n, err
}

// Write forwards to the inner connection, applying delays, drops and the
// sever schedule.
func (c *Conn) Write(b []byte) (int, error) {
	if sev, mode := c.severedNow(); sev {
		if mode == Blackhole {
			return len(b), nil // vanishes into the partition
		}
		return 0, ErrSevered
	}
	if c.plan.WriteDelay > 0 {
		if err := c.sleep(c.plan.WriteDelay); err != nil {
			return 0, err
		}
	}
	c.mu.Lock()
	drop := c.plan.DropWriteProb > 0 && c.next() < c.plan.DropWriteProb
	c.mu.Unlock()
	var n int
	var err error
	if drop {
		n, err = len(b), nil
	} else {
		n, err = c.inner.Write(b)
	}
	if err == nil {
		c.mu.Lock()
		c.writes++
		hit := c.plan.SeverAfterWrites > 0 && c.writes >= c.plan.SeverAfterWrites
		c.mu.Unlock()
		if hit {
			c.Sever()
		}
	}
	return n, err
}

func (c *Conn) sleep(d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closedCh:
		return net.ErrClosed
	}
}

// Close closes the wrapper and the inner connection.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closedCh) })
	return c.inner.Close()
}

// LocalAddr returns the inner local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the inner remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline sets both deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline tracks the deadline (blackholed reads honor it) and
// forwards it.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline forwards the deadline.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Stats reports the operation counts so far and whether the connection
// has been severed.
func (c *Conn) Stats() (reads, writes int, severed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reads, c.writes, c.severed
}

// Listener wraps a net.Listener so every accepted connection gets a plan
// chosen by connection index — worker 0 healthy, worker 1 severed after
// its 9th write, and so on.
type Listener struct {
	inner net.Listener

	mu    sync.Mutex
	n     int
	plan  func(i int) Plan
	conns []*Conn
}

// WrapListener builds a fault-injecting listener. plan receives the
// 0-based accept index; a nil plan injects nothing anywhere.
func WrapListener(ln net.Listener, plan func(i int) Plan) *Listener {
	return &Listener{inner: ln, plan: plan}
}

// Accept wraps the next connection with its scheduled plan.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	var p Plan
	if l.plan != nil {
		p = l.plan(i)
	}
	c := Wrap(conn, p)
	l.conns = append(l.conns, c)
	l.mu.Unlock()
	return c, nil
}

// Conns returns the wrapped connections accepted so far, in accept order.
func (l *Listener) Conns() []*Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Conn(nil), l.conns...)
}

// Close closes the inner listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the inner address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Dial connects and wraps the resulting connection with the plan —
// the worker-side splice point.
func Dial(ctx context.Context, network, addr string, p Plan) (*Conn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return Wrap(conn, p), nil
}
