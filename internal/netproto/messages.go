package netproto

import (
	"fmt"
	"math"
	"math/big"
	"time"

	"keysearch/internal/cracker"
	"keysearch/internal/keyspace"
)

func mathFloat64bits(v float64) uint64     { return math.Float64bits(v) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

// Hello is the registration handshake, both directions: the worker
// announces its version and name, the master acks with its own version
// (name "master"). Either side refuses a version it does not speak.
type Hello struct {
	Version int
	Name    string
}

// EncodeHello serializes a Hello.
func EncodeHello(h Hello) []byte {
	var e enc
	e.u32(uint32(h.Version))
	e.str(h.Name)
	return e.b
}

// DecodeHello parses a Hello.
func DecodeHello(b []byte) (Hello, error) {
	d := dec{b: b}
	h := Hello{Version: int(d.u32()), Name: d.str()}
	return h, d.err()
}

// JobSpec describes a cracking job on the wire: everything a worker needs
// to regenerate its sub-space locally. A multi-target job carries no
// Target; instead CorpusID content-addresses a digest corpus transferred
// separately over MsgCorpus chunks (see the package doc's v3 section).
type JobSpec struct {
	Algorithm  cracker.Algorithm
	Kind       cracker.KernelKind
	Target     []byte
	SaltPrefix []byte
	SaltSuffix []byte
	Charset    string
	MinLen     int
	MaxLen     int
	Order      keyspace.Order
	// CorpusID is the content hash (targetset.ID) of the encoded target
	// set this spec searches; zero means single-target mode.
	CorpusID uint64
}

// EncodeJob serializes a JobSpec.
func EncodeJob(j JobSpec) []byte {
	var e enc
	e.u8(byte(j.Algorithm))
	e.u8(byte(j.Kind))
	e.bytes(j.Target)
	e.bytes(j.SaltPrefix)
	e.bytes(j.SaltSuffix)
	e.str(j.Charset)
	e.u32(uint32(j.MinLen))
	e.u32(uint32(j.MaxLen))
	e.u8(byte(j.Order))
	e.u64(j.CorpusID)
	return e.b
}

// DecodeJob parses a JobSpec.
func DecodeJob(b []byte) (JobSpec, error) {
	d := dec{b: b}
	j := JobSpec{
		Algorithm:  cracker.Algorithm(d.u8()),
		Kind:       cracker.KernelKind(d.u8()),
		Target:     d.bytes(),
		SaltPrefix: d.bytes(),
		SaltSuffix: d.bytes(),
		Charset:    d.str(),
		MinLen:     int(d.u32()),
		MaxLen:     int(d.u32()),
		Order:      keyspace.Order(d.u8()),
		CorpusID:   d.u64(),
	}
	if err := d.err(); err != nil {
		return j, err
	}
	if !j.Algorithm.Valid() {
		return j, fmt.Errorf("netproto: bad algorithm %d", int(j.Algorithm))
	}
	if !j.Order.Valid() {
		return j, fmt.Errorf("netproto: bad order %d", int(j.Order))
	}
	if j.CorpusID != 0 && len(j.Target) != 0 {
		return j, fmt.Errorf("netproto: spec carries both a target and corpus %016x", j.CorpusID)
	}
	return j, nil
}

// Build materializes the job: parses the charset, builds the space and the
// cracker job. A multi-target spec's corpus is NOT attached here — the
// worker resolves CorpusID against its per-connection corpus table and
// sets Job.Corpus itself, refusing a spec whose corpus never arrived.
func (j JobSpec) Build() (*cracker.Job, error) {
	cs, err := keyspace.NewCharset(j.Charset)
	if err != nil {
		return nil, err
	}
	space, err := keyspace.New(cs, j.MinLen, j.MaxLen, j.Order)
	if err != nil {
		return nil, err
	}
	return &cracker.Job{
		Algorithm: j.Algorithm,
		Target:    j.Target,
		Space:     space,
		Kind:      j.Kind,
		Salt:      cracker.Salt{Prefix: j.SaltPrefix, Suffix: j.SaltSuffix},
	}, nil
}

// SpecID is the content hash that keys the per-connection spec table:
// FNV-1a over the spec's wire encoding. Both sides compute it from the
// spec itself, so a MsgSpec frame whose ID does not match its payload is
// detectably corrupt and an ID can never silently name the wrong space.
func SpecID(spec JobSpec) uint64 { return specHash(EncodeJob(spec)) }

func specHash(encoded []byte) uint64 {
	// FNV-1a 64-bit; inlined to keep the wire layer dependency-free.
	h := uint64(14695981039346656037)
	for _, b := range encoded {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// SpecFrame is the payload of MsgSpec: a job spec and its content-hash
// ID, installing the spec in the receiving connection's table.
type SpecFrame struct {
	ID   uint64
	Spec JobSpec
}

// EncodeSpec serializes a spec registration; the ID is derived from the
// spec's encoding, never caller-supplied.
func EncodeSpec(spec JobSpec) []byte {
	job := EncodeJob(spec)
	var e enc
	e.u64(specHash(job))
	e.b = append(e.b, job...)
	return e.b
}

// DecodeSpec parses and verifies a spec registration: the job must
// decode and the carried ID must equal the content hash of the job
// bytes.
func DecodeSpec(b []byte) (SpecFrame, error) {
	if len(b) < 8 {
		return SpecFrame{}, errShortPayload
	}
	d := dec{b: b}
	id := d.u64()
	job := b[8:]
	spec, err := DecodeJob(job)
	if err != nil {
		return SpecFrame{}, err
	}
	if want := specHash(job); id != want {
		return SpecFrame{}, fmt.Errorf("netproto: spec ID mismatch: frame says %016x, content hashes to %016x", id, want)
	}
	return SpecFrame{ID: id, Spec: spec}, nil
}

// CorpusChunkSize is the data payload of one MsgCorpus frame: well under
// MaxFrame, so a corpus transfer is many small frames rather than one
// huge one and never starves the connection's liveness traffic.
const CorpusChunkSize = 256 << 10

// CorpusChunk is one MsgCorpus payload: a window of the canonical
// targetset encoding, addressed by the blob's content hash. Chunks are
// sent in order; the receiver assembles them per connection and verifies
// the hash of the whole before decoding.
type CorpusChunk struct {
	ID     uint64 // content hash (targetset.ID) of the complete encoding
	Total  uint32 // total encoded length in bytes
	Offset uint32 // this chunk's byte offset
	Data   []byte
}

// EncodeCorpusChunk serializes a corpus chunk.
func EncodeCorpusChunk(c CorpusChunk) []byte {
	var e enc
	e.u64(c.ID)
	e.u32(c.Total)
	e.u32(c.Offset)
	e.bytes(c.Data)
	return e.b
}

// DecodeCorpusChunk parses a corpus chunk and checks its internal
// geometry (the cross-chunk checks — ordering, completeness, the content
// hash — belong to the assembler).
func DecodeCorpusChunk(b []byte) (CorpusChunk, error) {
	d := dec{b: b}
	c := CorpusChunk{ID: d.u64(), Total: d.u32(), Offset: d.u32(), Data: d.bytes()}
	if err := d.err(); err != nil {
		return CorpusChunk{}, err
	}
	if len(c.Data) == 0 {
		return CorpusChunk{}, fmt.Errorf("netproto: corpus %016x: empty chunk", c.ID)
	}
	if uint64(c.Offset)+uint64(len(c.Data)) > uint64(c.Total) {
		return CorpusChunk{}, fmt.Errorf("netproto: corpus %016x: chunk [%d,%d) overruns total %d",
			c.ID, c.Offset, int(c.Offset)+len(c.Data), c.Total)
	}
	return c, nil
}

// CorpusFrames splits an encoded target set into ready-to-send MsgCorpus
// payloads. The ID is derived from the blob itself (specHash, which
// matches targetset.ID by construction), never caller-supplied.
func CorpusFrames(encoded []byte) [][]byte {
	id := specHash(encoded)
	total := uint32(len(encoded))
	var frames [][]byte
	for off := 0; off < len(encoded); off += CorpusChunkSize {
		end := off + CorpusChunkSize
		if end > len(encoded) {
			end = len(encoded)
		}
		frames = append(frames, EncodeCorpusChunk(CorpusChunk{
			ID: id, Total: total, Offset: uint32(off), Data: encoded[off:end],
		}))
	}
	return frames
}

// TuneRequest asks the worker to run the tuning step against a
// registered spec.
type TuneRequest struct {
	SpecID uint64
}

// EncodeTuneRequest serializes a TuneRequest.
func EncodeTuneRequest(t TuneRequest) []byte {
	var e enc
	e.u64(t.SpecID)
	return e.b
}

// DecodeTuneRequest parses a TuneRequest.
func DecodeTuneRequest(b []byte) (TuneRequest, error) {
	d := dec{b: b}
	t := TuneRequest{SpecID: d.u64()}
	return t, d.err()
}

// TuneResult carries the tuning step's outcome.
type TuneResult struct {
	MinBatch   uint64
	Throughput float64
}

// EncodeTuneResult serializes a TuneResult.
func EncodeTuneResult(t TuneResult) []byte {
	var e enc
	e.u64(t.MinBatch)
	e.f64(t.Throughput)
	return e.b
}

// DecodeTuneResult parses a TuneResult.
func DecodeTuneResult(b []byte) (TuneResult, error) {
	d := dec{b: b}
	t := TuneResult{MinBatch: d.u64(), Throughput: d.f64()}
	return t, d.err()
}

// SearchRequest is an identifier interval to search against a
// registered spec. Seq names the search for the connection's progress
// and shrink frames (see the package doc's v4 section); ProgressEvery
// is the cadence at which the worker should send MsgProgress marks
// while the search runs (0 = no progress reporting).
type SearchRequest struct {
	SpecID        uint64
	Seq           uint64
	ProgressEvery time.Duration
	Start, End    *big.Int
}

// EncodeSearch serializes a SearchRequest.
func EncodeSearch(s SearchRequest) []byte {
	var e enc
	e.u64(s.SpecID)
	e.u64(s.Seq)
	e.u64(uint64(s.ProgressEvery))
	e.bigint(s.Start)
	e.bigint(s.End)
	return e.b
}

// DecodeSearch parses a SearchRequest.
func DecodeSearch(b []byte) (SearchRequest, error) {
	d := dec{b: b}
	s := SearchRequest{
		SpecID:        d.u64(),
		Seq:           d.u64(),
		ProgressEvery: time.Duration(d.u64()),
		Start:         d.bigint(),
		End:           d.bigint(),
	}
	if err := d.err(); err != nil {
		return s, err
	}
	if s.ProgressEvery < 0 {
		return s, fmt.Errorf("netproto: negative progress cadence %v", s.ProgressEvery)
	}
	return s, nil
}

// Progress is the payload of MsgProgress: the worker has fully tested
// the first Done keys of the search named Seq. Done is always a batch
// boundary, so the master may treat it as a safe split point.
type Progress struct {
	Seq  uint64
	Done uint64
}

// EncodeProgress serializes a Progress mark.
func EncodeProgress(p Progress) []byte {
	var e enc
	e.u64(p.Seq)
	e.u64(p.Done)
	return e.b
}

// DecodeProgress parses a Progress mark.
func DecodeProgress(b []byte) (Progress, error) {
	d := dec{b: b}
	p := Progress{Seq: d.u64(), Done: d.u64()}
	return p, d.err()
}

// Shrink is the payload of MsgShrink: truncate the search named Seq to
// its first Keep keys. Keep = 0 means "stop at the next batch boundary"
// — the cancellation limit of the same mechanism.
type Shrink struct {
	Seq  uint64
	Keep uint64
}

// EncodeShrink serializes a Shrink request.
func EncodeShrink(s Shrink) []byte {
	var e enc
	e.u64(s.Seq)
	e.u64(s.Keep)
	return e.b
}

// DecodeShrink parses a Shrink request.
func DecodeShrink(b []byte) (Shrink, error) {
	d := dec{b: b}
	s := Shrink{Seq: d.u64(), Keep: d.u64()}
	return s, d.err()
}

// ShrinkAck answers a Shrink. On OK, Keep is the effective boundary the
// worker committed to — at least the requested Keep, rounded up past
// any batch already in flight — and the search will test exactly
// [start, start+Keep). On refusal (OK false) the search is unaffected;
// Keep then reports the current limit for diagnostics.
type ShrinkAck struct {
	Seq  uint64
	Keep uint64
	OK   bool
}

// EncodeShrinkAck serializes a ShrinkAck.
func EncodeShrinkAck(a ShrinkAck) []byte {
	var e enc
	e.u64(a.Seq)
	e.u64(a.Keep)
	if a.OK {
		e.u8(1)
	} else {
		e.u8(0)
	}
	return e.b
}

// DecodeShrinkAck parses a ShrinkAck.
func DecodeShrinkAck(b []byte) (ShrinkAck, error) {
	d := dec{b: b}
	a := ShrinkAck{Seq: d.u64(), Keep: d.u64()}
	switch ok := d.u8(); ok {
	case 0:
	case 1:
		a.OK = true
	default:
		if d.e == nil {
			return a, fmt.Errorf("netproto: bad shrink-ack flag %d", ok)
		}
	}
	return a, d.err()
}

// Heartbeat is the payload of MsgPing and MsgPong. The master pings while
// a call is in flight; the worker echoes the sequence number back even
// while a search occupies its cores, which is what lets the master tell a
// slow worker from a dead one.
type Heartbeat struct {
	Seq uint64
}

// EncodeHeartbeat serializes a Heartbeat.
func EncodeHeartbeat(h Heartbeat) []byte {
	var e enc
	e.u64(h.Seq)
	return e.b
}

// DecodeHeartbeat parses a Heartbeat.
func DecodeHeartbeat(b []byte) (Heartbeat, error) {
	d := dec{b: b}
	h := Heartbeat{Seq: d.u64()}
	return h, d.err()
}

// Requeue is a worker's graceful hand-back of an interval it will not
// finish (local shutdown, resource loss). The master returns the interval
// to the dispatch pool exactly as if the worker had failed, but without
// waiting for a heartbeat timeout.
type Requeue struct {
	Start, End *big.Int
	Reason     string
}

// EncodeRequeue serializes a Requeue.
func EncodeRequeue(r Requeue) []byte {
	var e enc
	e.bigint(r.Start)
	e.bigint(r.End)
	e.str(r.Reason)
	return e.b
}

// DecodeRequeue parses a Requeue.
func DecodeRequeue(b []byte) (Requeue, error) {
	d := dec{b: b}
	r := Requeue{Start: d.bigint(), End: d.bigint(), Reason: d.str()}
	return r, d.err()
}

// SearchResult carries a worker's findings for one interval.
type SearchResult struct {
	Found   [][]byte
	Tested  uint64
	Elapsed time.Duration
}

// EncodeSearchResult serializes a SearchResult.
func EncodeSearchResult(r SearchResult) []byte {
	var e enc
	e.u32(uint32(len(r.Found)))
	for _, f := range r.Found {
		e.bytes(f)
	}
	e.u64(r.Tested)
	e.u64(uint64(r.Elapsed))
	return e.b
}

// DecodeSearchResult parses a SearchResult.
func DecodeSearchResult(b []byte) (SearchResult, error) {
	d := dec{b: b}
	n := d.u32()
	if d.e == nil && n > MaxFrame/5 {
		return SearchResult{}, fmt.Errorf("netproto: implausible found count %d", n)
	}
	r := SearchResult{}
	for i := uint32(0); i < n && d.e == nil; i++ {
		r.Found = append(r.Found, d.bytes())
	}
	r.Tested = d.u64()
	r.Elapsed = time.Duration(d.u64())
	return r, d.err()
}
