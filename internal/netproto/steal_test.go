package netproto

import (
	"context"
	"errors"
	"math/big"
	"strings"
	"sync"
	"testing"
	"time"

	"keysearch/internal/keyspace"
	"keysearch/internal/telemetry"
)

// lowerSpaceSize is the testJob keyspace: lowercase, lengths 1..3.
const lowerSpaceSize = 26 + 26*26 + 26*26*26

// startLiveWorker starts an in-process master/worker pair with the
// given search throttle and batch size, returning the master, the
// accepted remote worker and a cleanup-registered cancel.
func startLiveWorker(t *testing.T, opts MasterOptions, wcfg WorkerConfig) (*Master, *RemoteWorker) {
	t.Helper()
	m, err := NewMaster("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { _ = Dial(ctx, m.Addr(), wcfg) }()

	actx, acancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer acancel()
	ws, err := m.AcceptWorkers(actx, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m, ws[0]
}

// TestMasterHeartbeatValidation pins MasterOptions.Heartbeat semantics:
// zero takes the default, exactly -1 disables heartbeats, and any other
// negative value is a configuration error — not a silent disable.
func TestMasterHeartbeatValidation(t *testing.T) {
	for _, hb := range []time.Duration{0, -1, 2 * time.Second} { // -1 == -time.Nanosecond, the disable sentinel
		m, err := NewMaster("127.0.0.1:0", MasterOptions{Heartbeat: hb})
		if err != nil {
			t.Fatalf("Heartbeat %v rejected: %v", hb, err)
		}
		m.Close()
	}
	for _, hb := range []time.Duration{-2, -time.Second, -time.Millisecond} {
		m, err := NewMaster("127.0.0.1:0", MasterOptions{Heartbeat: hb})
		if err == nil {
			m.Close()
			t.Fatalf("Heartbeat %v accepted, want error", hb)
		}
		if !strings.Contains(err.Error(), "-1") {
			t.Fatalf("Heartbeat %v: error %q does not name the -1 convention", hb, err)
		}
	}
}

// TestLiveSearchShrinkHandshake drives the full protocol-v4 steal
// mechanics against a real (throttled) worker: the search streams
// progress marks at batch boundaries, Shrink moves its end to an acked
// boundary at or past the requested keep, the truncated result's Tested
// equals that boundary exactly, and a follow-up search of the tail on
// the SAME connection completes the space — head and tail tile it with
// no gap and no overlap, which is precisely the thief/victim split the
// job service performs.
func TestLiveSearchShrinkHandshake(t *testing.T) {
	_, w := startLiveWorker(t,
		MasterOptions{Heartbeat: 50 * time.Millisecond, HeartbeatTimeout: 5 * time.Second},
		WorkerConfig{Name: "shrinkee", Workers: 2, TuneStart: 1024, ProgressBatch: 64, Throttle: 2 * time.Millisecond})

	spec := testJob(t, "zzz") // the very last key: only the tail search may find it
	iv := keyspace.NewInterval(0, lowerSpaceSize)

	seq := w.NewSearchSeq()
	var mu sync.Mutex
	var marks []uint64
	progressed := make(chan struct{}, 1)
	type result struct {
		tested uint64
		found  int
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		rep, err := w.SearchSpecLive(context.Background(), spec, iv, seq, time.Millisecond, func(done uint64) {
			mu.Lock()
			marks = append(marks, done)
			mu.Unlock()
			select {
			case progressed <- struct{}{}:
			default:
			}
		})
		if err != nil {
			resCh <- result{err: err}
			return
		}
		resCh <- result{tested: rep.Tested, found: len(rep.Found)}
	}()

	select {
	case <-progressed:
	case <-time.After(10 * time.Second):
		t.Fatal("no progress mark within 10s")
	}
	mu.Lock()
	first := marks[0]
	mu.Unlock()
	if first == 0 || first%64 != 0 {
		t.Fatalf("first progress mark %d is not a positive batch boundary", first)
	}

	// A stale seq must be inert: the running search keeps its interval.
	if cut, ok := w.Shrink(context.Background(), seq+1, first); ok {
		t.Fatalf("shrink with stale seq acked at %d", cut)
	}

	keep := first + 128
	cut, ok := w.Shrink(context.Background(), seq, keep)
	if !ok {
		t.Fatalf("shrink to %d refused", keep)
	}
	if cut < keep || cut >= lowerSpaceSize || cut%64 != 0 {
		t.Fatalf("shrink acked at %d, want a batch boundary in [%d, %d)", cut, keep, lowerSpaceSize)
	}

	head := <-resCh
	if head.err != nil {
		t.Fatal(head.err)
	}
	if head.tested != cut {
		t.Fatalf("shrunk search tested %d keys, acked boundary was %d", head.tested, cut)
	}
	if head.found != 0 {
		t.Fatalf("shrunk head found %d keys, the target lives in the tail", head.found)
	}
	mu.Lock()
	for _, mk := range marks {
		if mk > cut {
			t.Fatalf("progress mark %d past the acked boundary %d", mk, cut)
		}
	}
	mu.Unlock()

	// The thief's half: the tail on the same connection. Together the two
	// searches cover the space exactly once and recover the key.
	tail, err := w.SearchSpec(context.Background(), spec, keyspace.NewInterval(int64(cut), lowerSpaceSize))
	if err != nil {
		t.Fatal(err)
	}
	if tail.Tested != lowerSpaceSize-cut {
		t.Fatalf("tail tested %d keys, want %d", tail.Tested, lowerSpaceSize-cut)
	}
	if len(tail.Found) != 1 || string(tail.Found[0]) != "zzz" {
		t.Fatalf("tail found %q, want [zzz]", tail.Found)
	}
}

// TestShrinkAfterSearchEndsRefused: once the search result is back, the
// worker has nothing to shrink and the master has no active search — the
// handshake must refuse cleanly rather than hang or invent a boundary.
func TestShrinkAfterSearchEndsRefused(t *testing.T) {
	_, w := startLiveWorker(t,
		MasterOptions{Heartbeat: 50 * time.Millisecond, HeartbeatTimeout: 5 * time.Second},
		WorkerConfig{Name: "done-worker", Workers: 2, TuneStart: 1024})

	spec := testJob(t, "ab")
	seq := w.NewSearchSeq()
	rep, err := w.SearchSpecLive(context.Background(), spec, keyspace.NewInterval(0, 702), seq, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tested != 702 {
		t.Fatalf("tested %d, want 702", rep.Tested)
	}
	if cut, ok := w.Shrink(context.Background(), seq, 100); ok {
		t.Fatalf("shrink of a finished search acked at %d", cut)
	}
}

// TestCancelMidSearchKeepsConnection pins the graceful-cancel path:
// cancelling the context mid-search must stop the worker at a batch
// boundary, return promptly with the context's error, and leave the
// connection usable — the next search on the same worker runs without a
// reconnect cycle. Before the fix, Executor.Search ignored cancellation
// until the search finished (or poisoned the connection and burned a
// rejoin on every lease the service cancelled).
func TestCancelMidSearchKeepsConnection(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, w := startLiveWorker(t,
		MasterOptions{Heartbeat: 50 * time.Millisecond, HeartbeatTimeout: 5 * time.Second, Telemetry: reg},
		WorkerConfig{Name: "cancellee", Workers: 2, TuneStart: 1024, ProgressBatch: 64, Throttle: 2 * time.Millisecond})

	spec := testJob(t, "zzz")
	ctx, cancel := context.WithCancel(context.Background())
	progressed := make(chan struct{}, 1)
	start := time.Now()
	type result struct {
		rep error
		dur time.Duration
	}
	done := make(chan result, 1)
	go func() {
		_, err := w.SearchSpecLive(ctx, spec, keyspace.NewInterval(0, lowerSpaceSize), w.NewSearchSeq(), time.Millisecond, func(uint64) {
			select {
			case progressed <- struct{}{}:
			default:
			}
		})
		done <- result{rep: err, dur: time.Since(start)}
	}()

	select {
	case <-progressed:
	case <-time.After(10 * time.Second):
		t.Fatal("no progress mark within 10s")
	}
	cancel()

	res := <-done
	if !errors.Is(res.rep, context.Canceled) {
		t.Fatalf("cancelled search returned %v, want context.Canceled", res.rep)
	}
	// The full throttled space takes ~600ms; a prompt cancel is far under
	// the 5s drain bound, let alone the full run.
	if res.dur > 5*time.Second {
		t.Fatalf("cancel took %v to unwind", res.dur)
	}

	// The connection survived: a follow-up search succeeds immediately and
	// exactly, with zero reconnects recorded.
	rep, err := w.SearchSpec(context.Background(), testJob(t, "ab"), keyspace.NewInterval(0, 702))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tested != 702 || len(rep.Found) != 1 || string(rep.Found[0]) != "ab" {
		t.Fatalf("post-cancel search: tested %d found %q", rep.Tested, rep.Found)
	}
	if n := reg.Snapshot().Counters[telemetry.MetricNetReconnects]; n != 0 {
		t.Fatalf("cancellation burned %d reconnects, want 0", n)
	}
}

// TestProgressShrinkRoundTrips covers the protocol-v4 codecs the way
// TestMessageRoundTrips covers v1-v3.
func TestProgressShrinkRoundTrips(t *testing.T) {
	sr, err := DecodeSearch(EncodeSearch(SearchRequest{
		SpecID: 7, Seq: 99, ProgressEvery: 250 * time.Millisecond,
		Start: big.NewInt(10), End: big.NewInt(20),
	}))
	if err != nil || sr.Seq != 99 || sr.ProgressEvery != 250*time.Millisecond {
		t.Errorf("search request: %+v %v", sr, err)
	}

	p, err := DecodeProgress(EncodeProgress(Progress{Seq: 3, Done: 1 << 40}))
	if err != nil || p.Seq != 3 || p.Done != 1<<40 {
		t.Errorf("progress: %+v %v", p, err)
	}
	if _, err := DecodeProgress([]byte{1, 2, 3}); err == nil {
		t.Error("torn progress frame accepted")
	}

	s, err := DecodeShrink(EncodeShrink(Shrink{Seq: 8, Keep: 4096}))
	if err != nil || s.Seq != 8 || s.Keep != 4096 {
		t.Errorf("shrink: %+v %v", s, err)
	}
	if _, err := DecodeShrink(nil); err == nil {
		t.Error("empty shrink frame accepted")
	}

	for _, ok := range []bool{true, false} {
		a, err := DecodeShrinkAck(EncodeShrinkAck(ShrinkAck{Seq: 5, Keep: 777, OK: ok}))
		if err != nil || a.Seq != 5 || a.Keep != 777 || a.OK != ok {
			t.Errorf("shrink ack (ok=%v): %+v %v", ok, a, err)
		}
	}
	if _, err := DecodeShrinkAck([]byte{0, 0, 0, 0, 0, 0, 0, 1}); err == nil {
		t.Error("torn shrink ack accepted")
	}
}
