package netproto

import (
	"context"
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"keysearch/internal/core"
	"keysearch/internal/cracker"
	"keysearch/internal/dispatch"
	"keysearch/internal/jobs"
	"keysearch/internal/keyspace"
	"keysearch/internal/targetset"
)

// Executor adapts a RemoteWorker to the job service's jobs.Executor
// contract: every Search carries its spec, so one TCP fleet serves any
// number of tenants' jobs concurrently. The spec rides to the worker at
// most once per connection (see RemoteWorker) — and for a multi-target
// spec the corpus blob is built and registered once here, then streamed
// to the worker ahead of the spec — while rejoin, heartbeat and requeue
// semantics are exactly those of the dispatch path: the service sees a
// failed lease and requeues it, never a torn one.
type Executor struct {
	w *RemoteWorker

	// cur maps the one in-flight live lease (the service serializes
	// leases per executor) to its wire search sequence number, so
	// ShrinkLease can address the running search. Nil between leases.
	cur atomic.Pointer[liveLease]

	mu sync.Mutex
	// specs caches wire conversions by jobs.Spec.Key() (a spec with a
	// million-digest corpus hashes its targets into the key rather than
	// carrying them).
	specs map[string]JobSpec
}

// liveLease pairs a job-service lease ID with the wire seq of the
// search running it.
type liveLease struct {
	leaseID uint64
	seq     uint64
}

// NewExecutor wraps an accepted remote worker as a job-service executor.
func NewExecutor(w *RemoteWorker) *Executor {
	return &Executor{w: w, specs: make(map[string]JobSpec)}
}

// Name identifies the underlying worker.
func (e *Executor) Name() string { return e.w.Name() }

// Tune benchmarks the remote worker over the same synthetic MD5 space
// jobs.LocalExecutor uses, so a mixed local/remote fleet's balance-rule
// shares are comparable.
func (e *Executor) Tune(ctx context.Context) (core.Tuning, error) {
	sum := md5.Sum([]byte("keysearch-tune"))
	spec, err := e.wireSpec(jobs.Spec{
		Algorithm: "md5",
		Target:    hex.EncodeToString(sum[:]),
		Charset:   "abcdefghijklmnopqrstuvwxyz0123456789",
		MinLen:    1,
		MaxLen:    8,
	})
	if err != nil {
		return core.Tuning{}, err
	}
	return e.w.TuneSpec(ctx, spec)
}

// Search runs the lease remotely against the job's spec.
func (e *Executor) Search(ctx context.Context, spec jobs.Spec, iv keyspace.Interval) (*dispatch.Report, error) {
	ws, err := e.wireSpec(spec)
	if err != nil {
		return nil, err
	}
	return e.w.SearchSpec(ctx, ws, iv)
}

// SearchLease implements jobs.StealExecutor: the remote search streams
// progress marks at the requested cadence and stays shrinkable through
// ShrinkLease while it runs. Registering the lease→seq mapping BEFORE
// the wire call starts means a steal attempt arriving at any point in
// the search's life finds either the mapping (and shrinks it) or no
// mapping (and is refused) — never a torn state.
func (e *Executor) SearchLease(ctx context.Context, l jobs.Lease, progressEvery time.Duration, onProgress func(done uint64)) (*dispatch.Report, error) {
	ws, err := e.wireSpec(l.Spec)
	if err != nil {
		return nil, err
	}
	ll := &liveLease{leaseID: l.ID, seq: e.w.NewSearchSeq()}
	e.cur.Store(ll)
	defer e.cur.CompareAndSwap(ll, nil)
	return e.w.SearchSpecLive(ctx, ws, l.Interval, ll.seq, progressEvery, onProgress)
}

// ShrinkLease implements jobs.StealExecutor by addressing the running
// search's wire seq. A lease that is not currently on the wire — not
// started, already returned — is refused, leaving it unaffected.
func (e *Executor) ShrinkLease(ctx context.Context, leaseID, keep uint64) (uint64, bool) {
	ll := e.cur.Load()
	if ll == nil || ll.leaseID != leaseID {
		return 0, false
	}
	return e.w.Shrink(ctx, ll.seq, keep)
}

func (e *Executor) wireSpec(spec jobs.Spec) (JobSpec, error) {
	key := spec.Key()
	e.mu.Lock()
	defer e.mu.Unlock()
	if ws, ok := e.specs[key]; ok {
		return ws, nil
	}
	ws, blob, err := WireSpec(spec)
	if err == nil {
		if blob != nil {
			e.w.RegisterCorpus(blob)
		}
		e.specs[key] = ws
	}
	return ws, err
}

// WireSpec converts an API-level job spec to its wire form. The order
// must stay PrefixMajor: the service's interval identifiers are defined
// over jobs.Spec.Space and the worker must map them to the same keys.
// For a multi-target spec the returned blob is the canonical targetset
// encoding the worker needs (register it with RemoteWorker.RegisterCorpus
// before calling); it is nil in single-target mode.
func WireSpec(spec jobs.Spec) (JobSpec, []byte, error) {
	alg, err := cracker.ParseAlgorithm(spec.Algorithm)
	if err != nil {
		return JobSpec{}, nil, err
	}
	ws := JobSpec{
		Algorithm: alg,
		Kind:      cracker.KernelOptimized,
		Charset:   spec.Charset,
		MinLen:    spec.MinLen,
		MaxLen:    spec.MaxLen,
		Order:     keyspace.PrefixMajor,
	}
	if spec.MultiTarget() {
		digests, err := spec.TargetDigests()
		if err != nil {
			return JobSpec{}, nil, err
		}
		set, err := targetset.Build(digests, targetset.Options{})
		if err != nil {
			return JobSpec{}, nil, err
		}
		blob := set.Encode()
		ws.CorpusID = targetset.ID(blob)
		return ws, blob, nil
	}
	target, err := hex.DecodeString(spec.Target)
	if err != nil || len(target) != alg.DigestSize() {
		return JobSpec{}, nil, fmt.Errorf("netproto: bad %s digest %q", spec.Algorithm, spec.Target)
	}
	ws.Target = target
	return ws, nil, nil
}
