package fleetsim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/big"
	"math/rand"
	"time"

	"keysearch/internal/core"
	"keysearch/internal/dispatch"
	"keysearch/internal/jobs"
	"keysearch/internal/keyspace"
	"keysearch/internal/sim"
)

// Submission is one job the simulated tenants submit to the service.
type Submission struct {
	Tenant   string
	Priority int
	At       float64 // virtual submission time
	Spec     jobs.Spec
	// Plant places a findable key at this identifier index (-1 = none):
	// the worker whose lease covers the index reports it found, which
	// is how time-to-find is measured without hashing anything.
	Plant int64
}

// Config describes one fleet run.
type Config struct {
	Workers int
	Seed    int64
	// TputMin/TputMax bound the per-worker throughput, drawn uniformly
	// from the seeded stream (heterogeneous fleet, keys per virtual
	// second).
	TputMin, TputMax float64
	// LeaseSeconds is the target virtual duration of one lease: each
	// worker's tuned MinBatch is its throughput times this, so the
	// balance rule N_j = N_max·X_j/X_max sizes every lease to roughly
	// LeaseSeconds of work regardless of worker speed (default 30).
	LeaseSeconds float64
	// LeaseTimeout is the service-side lease recovery deadline, in
	// virtual time. Required (> 0) when the churn schedule contains
	// crashes — a crashed worker's lease is recovered by nothing else.
	LeaseTimeout time.Duration
	// CheckpointEvery throttles durable checkpoints (jobs.Options).
	CheckpointEvery int
	// Steal enables adaptive work stealing: an idle worker that finds
	// no leasable work splits the straggler with the latest projected
	// finish at its progress boundary and takes the untested tail.
	// Jobs must also opt in via Spec.Steal.
	Steal bool
	// MinSteal is the smallest untested tail worth splitting
	// (default 64 keys).
	MinSteal uint64
	// ProgressEvery is the progress-mark cadence in virtual seconds:
	// the steal policy sees a victim's progress only as of its latest
	// mark, the way the live fleet's MsgProgress frames quantize what
	// the service knows (0 = continuous knowledge, the legacy model).
	// The shrink handshake is modeled too: the effective split never
	// cedes keys the victim has actually tested, however stale the
	// mark the thief planned from.
	ProgressEvery float64
	// Churn generates the perturbation schedule from Seed+1 when
	// Schedule is nil.
	Churn ChurnOptions
	// Schedule overrides generated churn with an explicit event list.
	Schedule []ChurnEvent
	Submissions []Submission
	// Dir is the store directory (WAL + snapshots live here).
	Dir string
	// EventBudget aborts a runaway simulation after this many engine
	// events (0 = unlimited).
	EventBudget int64
	// MaxRunning caps concurrently admitted jobs (0 = service default).
	MaxRunning int
	// Weights are the per-tenant fair-share weights.
	Weights map[string]float64
	// OnCommit, when set, observes every committed lease (test audits;
	// same contract as jobs.Options.OnCommit).
	OnCommit func(jobID, tenant string, iv keyspace.Interval, tested uint64)
}

func (c Config) leaseSeconds() float64 {
	if c.LeaseSeconds <= 0 {
		return 30
	}
	return c.LeaseSeconds
}

func (c Config) minSteal() uint64 {
	if c.MinSteal == 0 {
		return 64
	}
	return c.MinSteal
}

// Result is the outcome of one fleet run. The digests are FNV-1a
// hashes over the full event trace and the steal log: two runs of the
// same Config are byte-equivalent iff the digests (and counts) match.
type Result struct {
	Workers  int     `json:"workers"`
	Seed     int64   `json:"seed"`
	Makespan float64 `json:"makespan_s"` // virtual time of the last committed lease

	// TimeToFind is the virtual time the first planted key was
	// committed (-1 = never found / nothing planted).
	TimeToFind float64 `json:"time_to_find_s"`

	Tested      uint64 `json:"tested"`
	Commits     uint64 `json:"commits"`
	Leases      uint64 `json:"leases"`
	Steals      uint64 `json:"steals"`
	StolenKeys  uint64 `json:"stolen_keys"`
	Requeues    uint64 `json:"requeues"`
	LateCommits uint64 `json:"late_commits"`
	Crashes     uint64 `json:"crashes"`

	// FairnessJain is Jain's index over per-tenant committed keys
	// normalized by tenant weight: 1.0 = perfectly weighted-fair.
	FairnessJain float64           `json:"fairness_jain"`
	TenantKeys   map[string]uint64 `json:"tenant_keys"`

	TraceEvents uint64 `json:"trace_events"`
	TraceDigest string `json:"trace_digest"`
	StealDigest string `json:"steal_digest"`
	JobsDone    int    `json:"jobs_done"`
	EngineEnd   float64 `json:"engine_end_s"` // drained virtual clock (≥ makespan)
}

// simExec satisfies jobs.Executor with a synthetic tuning; Search is
// never called because the fleet drives the service manually.
type simExec struct {
	name string
	tn   core.Tuning
}

func (e *simExec) Name() string                              { return e.name }
func (e *simExec) Tune(context.Context) (core.Tuning, error) { return e.tn, nil }
func (e *simExec) Search(context.Context, jobs.Spec, keyspace.Interval) (*dispatch.Report, error) {
	return nil, errors.New("fleetsim: simulated executors cannot search; the fleet drives the service manually")
}

// Trace event kinds (digest input).
const (
	evLease uint8 = iota + 1
	evCommit
	evLate
	evSteal
	evRequeue
	evJoin
	evLeave
	evCrash
	evSlow
	evJobDone
)

// worker is the fleet-side runtime of one simulated machine. Progress
// on the current lease is tracked analytically: done keys at the mark
// time plus tput times elapsed since — no per-key events exist, which
// is what makes 10⁵ workers affordable.
type worker struct {
	tput    float64
	up      bool
	leaving bool
	idle    bool
	has     bool
	epoch   uint64 // invalidates scheduled completions and straggler entries
	lease   jobs.Lease
	done    float64 // keys completed as of mark
	mark    float64 // virtual time of the last progress accounting
	finish  float64 // projected completion time
}

// stragEntry is a lazily-invalidated straggler-heap record: stale
// epochs are discarded on pop instead of being removed eagerly.
type stragEntry struct {
	finish float64
	idx    int32
	epoch  uint64
}

// stragHeap is a max-heap on projected finish time: the top is the
// worker that will hold its lease the longest — the best steal victim.
type stragHeap []stragEntry

func (h stragHeap) Len() int { return len(h) }
func (h stragHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish > h[j].finish
	}
	return h[i].idx < h[j].idx // deterministic tie-break
}
func (h stragHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *stragHeap) Push(x any)        { *h = append(*h, x.(stragEntry)) }
func (h *stragHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// fleet is one in-progress run.
type fleet struct {
	cfg   Config
	eng   *sim.Engine
	clock *sim.Virtual
	svc   *jobs.Service
	ws    []worker
	idle  []int32
	strag stragHeap

	plants   map[string]uint64 // jobID -> planted identifier index
	doneJobs map[string]bool

	res     Result
	traceH  uint64 // FNV-1a over the event trace
	stealH  uint64 // FNV-1a over the steal log
	tenants map[string]uint64
}

const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvStr(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// trace folds one event into the run digest. Everything that matters
// for determinism — time, actor, payload — is hashed, so two runs with
// equal digests took the same decisions at the same virtual instants.
func (f *fleet) trace(kind uint8, a, b, c uint64) {
	f.res.TraceEvents++
	h := f.traceH
	h = fnvMix(h, uint64(kind))
	h = fnvMix(h, math.Float64bits(f.eng.Now()))
	h = fnvMix(h, a)
	h = fnvMix(h, b)
	h = fnvMix(h, c)
	f.traceH = h
}

// Run executes the configured fleet to completion and reports the
// trajectory. Deterministic: the same Config (including Seed and Dir
// contents — use a fresh directory) yields the same Result, digest for
// digest.
func Run(cfg Config) (*Result, error) {
	if cfg.Workers <= 0 {
		return nil, errors.New("fleetsim: Workers must be positive")
	}
	if cfg.TputMin <= 0 || cfg.TputMax < cfg.TputMin {
		return nil, fmt.Errorf("fleetsim: bad throughput range [%v, %v]", cfg.TputMin, cfg.TputMax)
	}
	if len(cfg.Submissions) == 0 {
		return nil, errors.New("fleetsim: no submissions")
	}
	if cfg.Dir == "" {
		return nil, errors.New("fleetsim: Dir required")
	}
	schedule := cfg.Schedule
	if schedule == nil {
		schedule = GenerateChurn(cfg.Seed+1, cfg.Workers, cfg.Churn)
	}
	for _, ev := range schedule {
		if ev.Kind == ChurnCrash && cfg.LeaseTimeout <= 0 {
			return nil, errors.New("fleetsim: crash churn requires LeaseTimeout > 0 (nothing else recovers a crashed worker's lease)")
		}
		if int(ev.Worker) >= cfg.Workers {
			return nil, fmt.Errorf("fleetsim: churn event targets worker %d of %d", ev.Worker, cfg.Workers)
		}
	}

	eng := sim.NewEngine()
	if cfg.EventBudget > 0 {
		eng.SetBudget(cfg.EventBudget)
	}
	clock := sim.NewVirtual(eng, time.Time{})
	f := &fleet{
		cfg:      cfg,
		eng:      eng,
		clock:    clock,
		ws:       make([]worker, cfg.Workers),
		plants:   make(map[string]uint64),
		doneJobs: make(map[string]bool),
		tenants:  make(map[string]uint64),
		traceH:   fnvOffset,
		stealH:   fnvOffset,
	}
	f.res = Result{Workers: cfg.Workers, Seed: cfg.Seed, TimeToFind: -1, TenantKeys: f.tenants}

	// Heterogeneous fleet: throughputs from the seeded stream, in index
	// order, so the draw is part of the deterministic trace.
	rng := rand.New(rand.NewSource(cfg.Seed))
	execs := make([]jobs.Executor, cfg.Workers)
	for i := range f.ws {
		tput := cfg.TputMin + rng.Float64()*(cfg.TputMax-cfg.TputMin)
		f.ws[i] = worker{tput: tput, up: true}
		execs[i] = &simExec{
			name: fmt.Sprintf("w%06d", i),
			tn:   core.Tuning{MinBatch: uint64(tput*cfg.leaseSeconds()) + 1, Throughput: tput},
		}
	}

	store, err := jobs.Open(cfg.Dir, jobs.StoreOptions{NoSync: true, Clock: clock})
	if err != nil {
		return nil, err
	}
	f.svc = jobs.NewService(store, execs, jobs.Options{
		Sched:           jobs.SchedOptions{MaxRunning: cfg.MaxRunning, Weights: cfg.Weights},
		Clock:           clock,
		LeaseTimeout:    cfg.LeaseTimeout,
		CheckpointEvery: cfg.CheckpointEvery,
		OnCommit: func(jobID, tenant string, iv keyspace.Interval, tested uint64) {
			f.tenants[tenant] += tested
			if cfg.OnCommit != nil {
				cfg.OnCommit(jobID, tenant, iv, tested)
			}
		},
		OnRequeue: func(jobID string) {
			f.res.Requeues++
			f.trace(evRequeue, fnvStr(jobID), 0, 0)
			if len(f.idle) > 0 {
				f.eng.Schedule(0, f.wakeOne)
			}
		},
	})
	if err := f.svc.StartManual(context.Background()); err != nil {
		store.Close()
		return nil, err
	}

	for _, ev := range schedule {
		ev := ev
		eng.Schedule(ev.At, func() { f.churn(ev) })
	}
	for _, sub := range cfg.Submissions {
		sub := sub
		eng.Schedule(sub.At, func() { f.submit(sub) })
	}
	// Bootstrap after the t=0 submissions (same timestamp, later serial).
	eng.Schedule(0, func() {
		for i := range f.ws {
			f.tryStart(int32(i))
		}
	})

	f.res.EngineEnd = eng.Run()
	if eng.BudgetExceeded() {
		f.svc.Shutdown(context.Background())
		return nil, fmt.Errorf("fleetsim: event budget of %d exceeded at t=%v (runaway simulation)", cfg.EventBudget, eng.Now())
	}
	f.res.FairnessJain = jain(f.tenants, cfg.Weights)
	f.res.JobsDone = len(f.doneJobs)
	f.res.TraceDigest = fmt.Sprintf("fnv1a:%016x", f.traceH)
	f.res.StealDigest = fmt.Sprintf("fnv1a:%016x", f.stealH)
	if err := f.svc.Shutdown(context.Background()); err != nil {
		return nil, err
	}
	res := f.res
	return &res, nil
}

// jain computes Jain's fairness index over per-tenant committed keys,
// normalized by weight: (Σx)² / (n·Σx²) with x = keys/weight.
func jain(keys map[string]uint64, weights map[string]float64) float64 {
	if len(keys) == 0 {
		return 1
	}
	var sum, sumSq float64
	for t, k := range keys {
		w := weights[t]
		if w <= 0 {
			w = 1
		}
		x := float64(k) / w
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(keys)) * sumSq)
}

func (f *fleet) submit(sub Submission) {
	j, err := f.svc.Submit(sub.Tenant, sub.Priority, sub.Spec)
	if err != nil {
		// A rejected submission is part of the scenario, not a crash.
		f.trace(evJobDone, fnvStr("rejected:"+sub.Tenant), 0, 0)
		return
	}
	if sub.Plant >= 0 {
		f.plants[j.ID] = uint64(sub.Plant)
	}
	f.trace(evLease, fnvStr(j.ID), 0, 0)
	if len(f.idle) > 0 {
		f.eng.Schedule(0, f.wakeOne)
	}
}

// tryStart gets worker i onto new work: lease first, then steal, then
// park idle.
func (f *fleet) tryStart(i int32) {
	w := &f.ws[i]
	if !w.up || w.has || w.leaving {
		return
	}
	if l, ok := f.svc.TryLease(int(i)); ok {
		f.assign(i, l)
		f.chainWake()
		return
	}
	if f.cfg.Steal && f.trySteal(i) {
		f.chainWake()
		return
	}
	if !w.idle {
		w.idle = true
		f.idle = append(f.idle, i)
	}
}

// chainWake schedules one idle worker to try for work: each success
// chains one more attempt, so a burst of new work ramps the idle pool
// up one event at a time instead of storming O(idle) wakeups per
// requeue.
func (f *fleet) chainWake() {
	if len(f.idle) > 0 {
		f.eng.Schedule(0, f.wakeOne)
	}
}

func (f *fleet) wakeOne() {
	for len(f.idle) > 0 {
		i := f.idle[len(f.idle)-1]
		f.idle = f.idle[:len(f.idle)-1]
		w := &f.ws[i]
		if !w.idle || !w.up || w.has {
			continue // stale entry
		}
		w.idle = false
		f.tryStart(i)
		return
	}
}

// assign installs a lease on worker i and schedules its completion.
func (f *fleet) assign(i int32, l jobs.Lease) {
	w := &f.ws[i]
	now := f.eng.Now()
	w.idle = false
	w.has = true
	w.lease = l
	w.epoch++
	w.done, w.mark = 0, now
	w.finish = now + float64(l.N)/w.tput
	f.scheduleCompletion(i)
	f.res.Leases++
	f.trace(evLease, uint64(i), l.ID, l.N)
}

// scheduleCompletion (re)schedules worker i's completion at its current
// projected finish and registers it as a potential steal victim. The
// captured epoch invalidates the event if anything — steal, slowdown,
// crash — changes the worker first.
func (f *fleet) scheduleCompletion(i int32) {
	w := &f.ws[i]
	ep := w.epoch
	f.eng.Schedule(w.finish-f.eng.Now(), func() { f.complete(i, ep) })
	heap.Push(&f.strag, stragEntry{finish: w.finish, idx: i, epoch: ep})
}

// complete lands worker i's lease (if the epoch still matches) and
// moves the worker to its next piece of work.
func (f *fleet) complete(i int32, epoch uint64) {
	w := &f.ws[i]
	if !w.up || !w.has || w.epoch != epoch {
		return // superseded by steal, slowdown, or crash
	}
	now := f.eng.Now()
	l := w.lease
	w.has = false
	w.epoch++

	rep := &dispatch.Report{Tested: l.N}
	lo := l.Interval.Start.Uint64()
	if p, ok := f.plants[l.JobID]; ok && p >= lo && p < lo+l.N {
		rep.Found = [][]byte{[]byte(fmt.Sprintf("plant@%d", p))}
	}
	if f.svc.Commit(l, rep) {
		f.res.Commits++
		f.res.Tested += l.N
		f.res.Makespan = now
		if len(rep.Found) > 0 && f.res.TimeToFind < 0 {
			f.res.TimeToFind = now
		}
		f.trace(evCommit, uint64(i), l.ID, l.N)
		f.checkJobDone(l.JobID)
	} else {
		// The service requeued this lease before we finished (timeout
		// after a slowdown, or a crash/rejoin race): the work is wasted,
		// the coverage accounting is untouched.
		f.res.LateCommits++
		f.trace(evLate, uint64(i), l.ID, l.N)
	}
	if w.leaving {
		w.up, w.leaving = false, false
		f.trace(evLeave, uint64(i), 0, 0)
		return
	}
	f.tryStart(i)
}

func (f *fleet) checkJobDone(jobID string) {
	if f.doneJobs[jobID] {
		return
	}
	j, err := f.svc.Get(jobID)
	if err != nil || !j.State.Terminal() {
		return
	}
	f.doneJobs[jobID] = true
	f.trace(evJobDone, fnvStr(jobID), j.Tested, 0)
}

// trySteal points idle worker i at the straggler with the latest
// projected finish and splits that victim's lease at (just past) its
// current progress: the victim keeps what it is about to finish plus
// half the untested remainder, the thief takes the rest as a fresh
// lease. Returns false when no straggler is worth splitting.
func (f *fleet) trySteal(i int32) bool {
	now := f.eng.Now()
	for f.strag.Len() > 0 {
		top := f.strag[0]
		v := &f.ws[top.idx]
		if top.epoch != v.epoch || !v.has || !v.up {
			heap.Pop(&f.strag)
			continue
		}
		done := v.done + (now-v.mark)*v.tput
		// What the thief KNOWS about the victim is quantized to the last
		// progress mark; what the victim has DONE keeps advancing. The
		// split is planned from knowledge and clamped by reality, exactly
		// like the live fleet's shrink ack.
		known := done
		if p := f.cfg.ProgressEvery; p > 0 {
			known = v.done + math.Floor((now-v.mark)/p)*p*v.tput
			if known > done {
				known = done
			}
			if known < 0 {
				known = 0
			}
		}
		remain := float64(v.lease.N) - known
		if remain < float64(f.cfg.minSteal()) {
			// The biggest straggler's tail is below the threshold;
			// smaller ones won't be better.
			return false
		}
		keep := uint64(known) + uint64(math.Ceil(remain/2))
		if fk := float64(keep); fk < done {
			// Stale mark: the victim already tested past the planned
			// split; the handshake moves the boundary to its true
			// progress (ack at cut > keep).
			keep = uint64(math.Ceil(done))
		}
		if keep >= v.lease.N {
			return false
		}
		heap.Pop(&f.strag) // stale after the split either way
		nl, ok := f.svc.Steal(v.lease, keep, int(i))
		if !ok {
			// Lease already expired service-side, or the job does not
			// allow stealing; try the next straggler.
			continue
		}
		vi := top.idx
		v.lease.N = keep
		v.lease.Interval = keyspace.Interval{
			Start: v.lease.Interval.Start,
			End:   new(big.Int).Add(v.lease.Interval.Start, new(big.Int).SetUint64(keep)),
		}
		v.done, v.mark = done, now
		v.epoch++
		v.finish = now + (float64(keep)-done)/v.tput
		f.scheduleCompletion(vi)

		f.res.Steals++
		f.res.StolenKeys += nl.N
		h := f.stealH
		h = fnvMix(h, math.Float64bits(now))
		h = fnvMix(h, uint64(i))
		h = fnvMix(h, uint64(vi))
		h = fnvMix(h, nl.N)
		f.stealH = h
		f.trace(evSteal, uint64(i), uint64(vi), nl.N)
		f.assign(i, nl)
		return true
	}
	return false
}

// churn applies one scheduled perturbation. Handlers are idempotent
// against state drift (a Leave for a down worker is a no-op), so a
// generated schedule never needs to be consistent with runtime state.
func (f *fleet) churn(ev ChurnEvent) {
	w := &f.ws[ev.Worker]
	i := int32(ev.Worker)
	switch ev.Kind {
	case ChurnJoin:
		if w.up {
			return
		}
		w.up, w.leaving = true, false
		f.trace(evJoin, uint64(i), 0, 0)
		f.tryStart(i)
	case ChurnLeave:
		if !w.up || w.leaving {
			return
		}
		if w.has {
			w.leaving = true // drain: finish the current lease first
			return
		}
		w.up = false
		f.trace(evLeave, uint64(i), 0, 0)
	case ChurnCrash:
		if !w.up {
			return
		}
		w.up, w.leaving, w.has = false, false, false
		w.epoch++ // cancels any scheduled completion
		f.res.Crashes++
		f.trace(evCrash, uint64(i), 0, 0)
		// The in-flight lease (if any) is recovered by the service's
		// lease timeout; until then its keys are simply dark.
	case ChurnSlow:
		if !w.up || ev.Factor <= 0 {
			return
		}
		now := f.eng.Now()
		if w.has {
			w.done += (now - w.mark) * w.tput
			if w.done > float64(w.lease.N) {
				w.done = float64(w.lease.N)
			}
			w.mark = now
		}
		w.tput *= ev.Factor
		if w.tput < 1e-3 {
			w.tput = 1e-3
		}
		f.trace(evSlow, uint64(i), math.Float64bits(ev.Factor), 0)
		if w.has {
			w.epoch++
			rem := float64(w.lease.N) - w.done
			if rem < 0 {
				rem = 0
			}
			w.finish = now + rem/w.tput
			f.scheduleCompletion(i)
		}
	}
}
