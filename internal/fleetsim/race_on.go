//go:build race

package fleetsim

// raceEnabled is true when the race detector is compiled in; the
// 10⁵-worker acceptance test skips under -race (the detector's memory
// overhead, not a data race, is what it cannot afford).
const raceEnabled = true
