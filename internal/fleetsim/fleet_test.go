package fleetsim

import (
	"crypto/md5"
	"encoding/hex"
	"math/big"
	"sort"
	"sync"
	"testing"
	"time"

	"keysearch/internal/jobs"
	"keysearch/internal/keyspace"
)

// simSpec builds a small-alphabet spec: space size Σ|charset|^L for
// L = 1..maxLen, which scales test fleets without touching real
// hashing (the fleet never hashes anyway). maxLen is capped at 20 by
// the keyspace package, so bigger fleets use bigger alphabets.
func simSpec(charset string, maxLen int, steal bool, maxSolutions int) jobs.Spec {
	sum := md5.Sum([]byte("fleetsim-test"))
	return jobs.Spec{
		Algorithm:    "md5",
		Target:       hex.EncodeToString(sum[:]),
		Charset:      charset,
		MinLen:       1,
		MaxLen:       maxLen,
		MaxSolutions: maxSolutions,
		Steal:        steal,
	}
}

func spaceSize(t *testing.T, spec jobs.Spec) uint64 {
	t.Helper()
	sp, err := spec.Space()
	if err != nil {
		t.Fatalf("space: %v", err)
	}
	n, ok := sp.Size64()
	if !ok {
		t.Fatal("test space does not fit uint64")
	}
	return n
}

func TestFleetCompletesAJob(t *testing.T) {
	spec := simSpec("ab", 20, false, 0) // ~2M keys
	res, err := Run(Config{
		Workers:     200,
		Seed:        1,
		TputMin:     50,
		TputMax:     150,
		Dir:         t.TempDir(),
		EventBudget: 2_000_000,
		Submissions: []Submission{{Tenant: "a", Spec: spec, Plant: -1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsDone != 1 {
		t.Fatalf("JobsDone = %d, want 1", res.JobsDone)
	}
	if want := spaceSize(t, spec); res.Tested != want {
		t.Fatalf("Tested = %d, want the whole space %d", res.Tested, want)
	}
	if res.Makespan <= 0 {
		t.Fatalf("Makespan = %v, want > 0", res.Makespan)
	}
	if res.Steals != 0 {
		t.Fatalf("%d steals with stealing disabled", res.Steals)
	}
}

func TestFleetPlantedKeyStopsQuotaJob(t *testing.T) {
	spec := simSpec("ab", 20, false, 1)
	plant := int64(spaceSize(t, spec) / 3)
	res, err := Run(Config{
		Workers:     100,
		Seed:        2,
		TputMin:     80,
		TputMax:     120,
		Dir:         t.TempDir(),
		EventBudget: 2_000_000,
		Submissions: []Submission{{Tenant: "a", Spec: spec, Plant: plant}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeToFind < 0 {
		t.Fatal("planted key never found")
	}
	if res.JobsDone != 1 {
		t.Fatalf("quota job not done (JobsDone = %d)", res.JobsDone)
	}
	if full := spaceSize(t, spec); res.Tested >= full {
		t.Fatalf("quota stop tested the whole space (%d of %d)", res.Tested, full)
	}
}

// churnedConfig is the shared churn-heavy scenario: crashes (recovered
// by lease timeout), graceful leaves, rejoins, and slowdowns.
func churnedConfig(workers int, charset string, maxLen int, seed int64, steal bool, dir string) Config {
	return Config{
		Workers:         workers,
		Seed:            seed,
		TputMin:         50,
		TputMax:         150,
		LeaseTimeout:    600 * time.Second,
		CheckpointEvery: 64,
		Steal:           steal,
		Churn: ChurnOptions{
			Horizon:   400,
			CrashRate: 0.05,
			LeaveRate: 0.05,
			JoinRate:  0.15,
			SlowRate:  0.20,
		},
		Dir:         dir,
		EventBudget: 20_000_000,
		Submissions: []Submission{{Tenant: "a", Spec: simSpec(charset, maxLen, steal, 0), Plant: -1}},
	}
}

func TestFleetDeterministicTraceUnderChurnAndStealing(t *testing.T) {
	run := func(dir string) *Result {
		res, err := Run(churnedConfig(2000, "abc", 15, 11, true, dir))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	if a.TraceDigest != b.TraceDigest || a.TraceEvents != b.TraceEvents {
		t.Fatalf("trace diverged: %s/%d vs %s/%d", a.TraceDigest, a.TraceEvents, b.TraceDigest, b.TraceEvents)
	}
	if a.StealDigest != b.StealDigest || a.Steals != b.Steals {
		t.Fatalf("steal log diverged: %s/%d vs %s/%d", a.StealDigest, a.Steals, b.StealDigest, b.Steals)
	}
	if a.Makespan != b.Makespan || a.Tested != b.Tested || a.Commits != b.Commits {
		t.Fatalf("trajectory diverged: %+v vs %+v", a, b)
	}
	if a.JobsDone != 1 {
		t.Fatalf("churned job did not complete (JobsDone = %d)", a.JobsDone)
	}
	if a.Steals == 0 {
		t.Fatal("steal-enabled churny run recorded no steals")
	}
	// A different seed must change the trace (the digest is not a constant).
	c, err := Run(churnedConfig(2000, "abc", 15, 12, true, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if c.TraceDigest == a.TraceDigest {
		t.Fatal("different seeds produced identical trace digests")
	}
}

// TestFleetExactCoverageUnderCrashChurn audits every committed span:
// with crashes, lease-timeout recovery, and split-lease stealing all
// active, the committed intervals must tile the keyspace exactly —
// no gap, no overlap — and sum to the space size.
func TestFleetExactCoverageUnderCrashChurn(t *testing.T) {
	type span struct{ lo, hi uint64 }
	var mu sync.Mutex
	var spans []span

	cfg := churnedConfig(1000, "abc", 14, 21, true, t.TempDir())
	cfg.OnCommit = func(jobID, tenant string, iv keyspace.Interval, tested uint64) {
		lo := iv.Start.Uint64()
		hi := new(big.Int).Set(iv.End).Uint64()
		mu.Lock()
		spans = append(spans, span{lo, hi})
		mu.Unlock()
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsDone != 1 {
		t.Fatalf("job did not complete (JobsDone = %d)", res.JobsDone)
	}
	if res.Crashes == 0 || res.Requeues == 0 {
		t.Fatalf("scenario exercised no crash recovery (crashes=%d requeues=%d)", res.Crashes, res.Requeues)
	}
	if res.Steals == 0 {
		t.Fatal("scenario exercised no stealing")
	}

	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	want := spaceSize(t, cfg.Submissions[0].Spec)
	var at, total uint64
	for i, s := range spans {
		if s.lo != at {
			t.Fatalf("span %d starts at %d, want %d (gap or overlap)", i, s.lo, at)
		}
		if s.hi <= s.lo {
			t.Fatalf("span %d is empty or inverted [%d,%d)", i, s.lo, s.hi)
		}
		at = s.hi
		total += s.hi - s.lo
	}
	if at != want || total != want {
		t.Fatalf("committed spans cover [0,%d), sum %d; want exactly [0,%d)", at, total, want)
	}
	if res.Tested != want {
		t.Fatalf("Tested = %d, want %d", res.Tested, want)
	}
}

// TestStealingBeatsStaticBalancing pins the adaptive-stealing win: in
// a fleet degraded by slowdowns, splitting stragglers' leases finishes
// the job strictly earlier than the paper's static balance rule alone.
func TestStealingBeatsStaticBalancing(t *testing.T) {
	run := func(steal bool) *Result {
		res, err := Run(Config{
			Workers: 500,
			Seed:    31,
			TputMin: 50,
			TputMax: 150,
			Steal:   steal,
			Churn: ChurnOptions{
				Horizon:  120,
				SlowRate: 0.5,
				SlowMin:  0.05,
				SlowMax:  0.4, // slowdowns only: stragglers, no crashes
			},
			Dir:         t.TempDir(),
			EventBudget: 10_000_000,
			Submissions: []Submission{{Tenant: "a", Spec: simSpec("abc", 14, true, 0), Plant: -1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.JobsDone != 1 {
			t.Fatalf("job incomplete (steal=%v)", steal)
		}
		return res
	}
	static := run(false)
	adaptive := run(true)
	if adaptive.Steals == 0 {
		t.Fatal("adaptive run recorded no steals")
	}
	if adaptive.Makespan >= static.Makespan {
		t.Fatalf("stealing did not beat static balancing: %v >= %v", adaptive.Makespan, static.Makespan)
	}
	t.Logf("makespan static=%.1fs adaptive=%.1fs (%.1f%% faster, %d steals, %d keys moved)",
		static.Makespan, adaptive.Makespan,
		100*(1-adaptive.Makespan/static.Makespan), adaptive.Steals, adaptive.StolenKeys)
}

// TestFleetFairShareAcrossTenants: two equal-weight tenants with
// equal-size jobs converge to equal committed keys (Jain index ≈ 1).
func TestFleetFairShareAcrossTenants(t *testing.T) {
	spec := simSpec("ab", 20, false, 0)
	res, err := Run(Config{
		Workers:     300,
		Seed:        41,
		TputMin:     80,
		TputMax:     120,
		Dir:         t.TempDir(),
		EventBudget: 5_000_000,
		Submissions: []Submission{
			{Tenant: "alice", Spec: spec, Plant: -1},
			{Tenant: "bob", Spec: spec, Plant: -1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsDone != 2 {
		t.Fatalf("JobsDone = %d, want 2", res.JobsDone)
	}
	if res.FairnessJain < 0.99 {
		t.Fatalf("Jain fairness %v across equal tenants, want ≥ 0.99 (keys: %v)", res.FairnessJain, res.TenantKeys)
	}
}

// TestFleet100kWorkers is the scale acceptance run: a 10⁵-worker
// heterogeneous fleet with live churn completes a full job, with
// stealing, in bounded host time, and the same seed reproduces the
// identical event trace and steal log. Skipped in -short and under
// the race detector (memory overhead, not a race).
func TestFleet100kWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-worker acceptance run skipped in -short")
	}
	if raceEnabled {
		t.Skip("10⁵-worker acceptance run skipped under -race")
	}
	cfg := func(dir string) Config {
		c := churnedConfig(100_000, "abc", 18, 99, true, dir)
		c.CheckpointEvery = 20_000
		c.EventBudget = 50_000_000
		return c
	}
	start := time.Now()
	a, err := Run(cfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("100k workers: %d commits, %d steals, %d requeues, makespan %.0f virtual s in %v host time",
		a.Commits, a.Steals, a.Requeues, a.Makespan, elapsed)
	if a.JobsDone != 1 {
		t.Fatalf("job incomplete: %+v", a)
	}
	if want := spaceSize(t, cfg("").Submissions[0].Spec); a.Tested != want {
		t.Fatalf("Tested = %d, want %d", a.Tested, want)
	}
	if elapsed > 60*time.Second {
		t.Fatalf("acceptance run took %v host time, budget 60s", elapsed)
	}
	b, err := Run(cfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceDigest != b.TraceDigest || a.StealDigest != b.StealDigest {
		t.Fatalf("100k run not deterministic: trace %s vs %s, steals %s vs %s",
			a.TraceDigest, b.TraceDigest, a.StealDigest, b.StealDigest)
	}
}

func TestOverlapCurveShape(t *testing.T) {
	overlaps := []float64{0, 0.25, 0.5, 1}

	// No failures: overlap is pure loss. Makespan grows, nothing misses,
	// and mean TTF stays flat (within Monte-Carlo noise) because the
	// nearest covering agent always wins.
	healthy := OverlapCurve(5, 16, 20_000, 0, overlaps)
	if len(healthy) != 4 {
		t.Fatalf("%d points", len(healthy))
	}
	for i, p := range healthy {
		if p.Makespan != 1+p.Overlap {
			t.Fatalf("point %d: makespan %v, want %v", i, p.Makespan, 1+p.Overlap)
		}
		if p.MissRate != 0 {
			t.Fatalf("point %d: misses without failures (%v)", i, p.MissRate)
		}
		if p.MeanTTF < 0.45 || p.MeanTTF > 0.55 {
			t.Fatalf("point %d: mean TTF %v, want ≈ 0.5 (flat in overlap)", i, p.MeanTTF)
		}
	}

	// With failures, overlap is redundancy: the miss rate must fall
	// monotonically as the overlap fraction grows.
	failing := OverlapCurve(7, 16, 20_000, 0.3, overlaps)
	if failing[0].MissRate == 0 {
		t.Fatal("30% agent failure produced no misses at zero overlap")
	}
	for i := 1; i < len(failing); i++ {
		if failing[i].MissRate >= failing[i-1].MissRate {
			t.Fatalf("miss rate did not fall with overlap: %v -> %v at f=%v",
				failing[i-1].MissRate, failing[i].MissRate, failing[i].Overlap)
		}
	}

	// Same seed, same curve.
	again := OverlapCurve(7, 16, 20_000, 0.3, overlaps)
	for i := range failing {
		if failing[i] != again[i] {
			t.Fatal("overlap curve not deterministic")
		}
	}
}
