package fleetsim

import (
	"testing"

	"keysearch/internal/jobs"
	"keysearch/internal/keyspace"
)

// failoverConfig is the shared scenario: a modest fleet over a few
// multi-million-key jobs with planted solutions, sized so a mid-run
// crash interrupts plenty of in-flight leases.
func failoverConfig(t *testing.T, seed int64) FailoverConfig {
	t.Helper()
	spec := simSpec("ab", 18, false, 0) // ~500k keys per job
	n := int64(spaceSize(t, spec))
	return FailoverConfig{
		Workers: 40,
		Seed:    seed,
		TputMin: 300,
		TputMax: 900,
		// Short leases put commits on the WAL well before the crash
		// (default 30s leases would complete only after CrashAt).
		LeaseSeconds: 5,
		EventBudget:  2_000_000,
		MasterDir:    t.TempDir(),
		ReplicaDir:   t.TempDir(),
		Submissions: []Submission{
			{Tenant: "a", Spec: spec, Plant: n / 3},
			{Tenant: "a", Spec: spec, Plant: n - 1},
			{Tenant: "b", Spec: spec, Plant: -1},
		},
	}
}

func TestFailoverBaselineReplicaTailsAlong(t *testing.T) {
	run := func() *FailoverResult {
		cfg := failoverConfig(t, 7)
		cfg.CrashAt = -1
		res, err := RehearseFailover(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.JobsDone != 3 {
		t.Fatalf("JobsDone = %d, want 3", res.JobsDone)
	}
	if res.FoundJobs != 2 {
		t.Fatalf("FoundJobs = %d, want 2 (two plants)", res.FoundJobs)
	}
	if res.CrashAt != -1 || res.PromotedAt != -1 || res.DroppedRecords != 0 {
		t.Fatalf("baseline reported a crash: %+v", res)
	}
	if res.ReplicaSeq == 0 {
		t.Fatal("replica never advanced on the baseline")
	}
	// Same config, fresh directories: byte-identical trajectory.
	again := run()
	if res.Makespan != again.Makespan || res.Tested != again.Tested ||
		res.Commits != again.Commits || res.ReplicaSeq != again.ReplicaSeq {
		t.Fatalf("baseline not deterministic:\n  %+v\n  %+v", res, again)
	}
}

func TestFailoverPromotionExactlyOnce(t *testing.T) {
	cfg := failoverConfig(t, 11)
	cfg.ReplLag = 6  // a crash loses up to 6 records
	cfg.CrashAt = 30 // mid-run: the fleet needs ~60 virtual seconds in total
	cfg.DetectAfter = 10
	res, err := RehearseFailover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashAt != 30 {
		t.Fatalf("CrashAt = %v, want 30", res.CrashAt)
	}
	if res.PromotedAt != 40 {
		t.Fatalf("PromotedAt = %v, want 40", res.PromotedAt)
	}
	if res.Makespan <= res.PromotedAt {
		t.Fatalf("Makespan = %v: the run ended before promotion — the crash was not mid-run", res.Makespan)
	}
	if res.DroppedRecords == 0 {
		t.Fatal("the crash dropped nothing — the lag window was empty, the scenario is toothless")
	}
	if res.FirstCommitAfter < res.PromotedAt {
		t.Fatalf("FirstCommitAfter = %v before promotion at %v", res.FirstCommitAfter, res.PromotedAt)
	}
	if res.JobsDone != 3 {
		t.Fatalf("JobsDone = %d, want 3 — the promoted service did not finish the fleet's work", res.JobsDone)
	}
	if res.FoundJobs != 2 {
		t.Fatalf("FoundJobs = %d, want 2", res.FoundJobs)
	}
	if res.ReplicaSeq == 0 {
		t.Fatal("promotion from an empty replica")
	}
	// Work performed must be at least one full pass: re-tested keys
	// (whose checkpoints died in the lag window) only add.
	spec := simSpec("ab", 18, false, 0)
	if min := 3 * spaceSize(t, spec); res.Tested < min {
		t.Fatalf("Tested = %d, want >= %d", res.Tested, min)
	}

	// The promoted store is the durable record: every job done, every
	// keyspace covered exactly once (Tested == Space per job).
	store, err := jobs.Open(cfg.ReplicaDir, jobs.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	table := store.List("")
	if len(table) != 3 {
		t.Fatalf("promoted store has %d jobs, want 3", len(table))
	}
	for _, j := range table {
		if j.State != jobs.StateDone {
			t.Fatalf("job %s ended %s, want done", j.ID, j.State)
		}
		if j.Space != "" && j.Tested == 0 {
			t.Fatalf("job %s has no coverage", j.ID)
		}
		want := spaceSize(t, j.Spec)
		if j.Tested != want {
			t.Fatalf("job %s: tested %d of %d keys — coverage is not exactly-once", j.ID, j.Tested, want)
		}
	}
}

func TestFailoverAuditObservesBothPhases(t *testing.T) {
	cfg := failoverConfig(t, 13)
	cfg.ReplLag = 4
	cfg.CrashAt = 30
	cfg.DetectAfter = 5
	var master, promoted int
	cfg.OnCommit = func(p bool, _, _ string, _ keyspace.Interval, _ uint64) {
		if p {
			promoted++
		} else {
			master++
		}
	}
	if _, err := RehearseFailover(cfg); err != nil {
		t.Fatal(err)
	}
	if master == 0 || promoted == 0 {
		t.Fatalf("commit hook saw master=%d promoted=%d, want both > 0", master, promoted)
	}
}

func TestFailoverRejectsBadConfig(t *testing.T) {
	dir := t.TempDir()
	bad := []FailoverConfig{
		{Workers: 0},
		{Workers: 1, TputMin: 0},
		{Workers: 1, TputMin: 1, TputMax: 2},
		{Workers: 1, TputMin: 1, TputMax: 2, Submissions: []Submission{{}}, MasterDir: dir, ReplicaDir: dir},
	}
	for i, cfg := range bad {
		if _, err := RehearseFailover(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
