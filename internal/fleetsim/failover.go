package fleetsim

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"time"

	"keysearch/internal/core"
	"keysearch/internal/dispatch"
	"keysearch/internal/jobs"
	"keysearch/internal/keyspace"
	"keysearch/internal/shardplane"
	"keysearch/internal/sim"
)

// FailoverConfig describes one master-crash rehearsal: a worker fleet
// drives a replicating master service in virtual time; at CrashAt the
// master dies (losing the replication lag window, like in-flight frames
// on a severed link), and DetectAfter seconds later the warm replica is
// promoted and the fleet resumes against it.
type FailoverConfig struct {
	Workers          int
	Seed             int64
	TputMin, TputMax float64
	// LeaseSeconds is the target virtual duration of one lease
	// (default 30), as in Config.
	LeaseSeconds float64
	// CheckpointEvery throttles durable checkpoints (jobs.Options).
	CheckpointEvery int
	// ReplLag is the number of WAL records the replication link holds
	// back — the window a crash loses (0 = fully synchronous).
	ReplLag int
	// CrashAt is the virtual time of the master's death; negative runs
	// the no-crash baseline (the replica just tails along).
	CrashAt float64
	// DetectAfter is the virtual failure-detection delay: promotion
	// happens at CrashAt+DetectAfter.
	DetectAfter float64
	Submissions []Submission
	// MasterDir and ReplicaDir are the two stores' directories; they
	// must differ — the promotion must never read the master's disk.
	MasterDir, ReplicaDir string
	// EventBudget aborts a runaway simulation (0 = unlimited).
	EventBudget int64
	// OnCommit, when set, observes every committed lease; promoted
	// reports whether it landed on the promoted service.
	OnCommit func(promoted bool, jobID, tenant string, iv keyspace.Interval, tested uint64)
}

func (c FailoverConfig) leaseSeconds() float64 {
	if c.LeaseSeconds <= 0 {
		return 30
	}
	return c.LeaseSeconds
}

// FailoverResult is the trajectory of one rehearsal. Run has already
// audited the exactly-once invariant (promoted-phase commits tile the
// promotion-time remaining set exactly) before returning it.
type FailoverResult struct {
	CrashAt    float64 `json:"crash_at_s"`    // -1 on the baseline
	PromotedAt float64 `json:"promoted_at_s"` // -1 on the baseline
	// FirstCommitAfter is the virtual time of the first commit on the
	// promoted service (-1 = none): the service-level recovery latency
	// is FirstCommitAfter - CrashAt.
	FirstCommitAfter float64 `json:"first_commit_after_s"`
	Makespan         float64 `json:"makespan_s"`
	EngineEnd        float64 `json:"engine_end_s"`
	// ReplicaSeq is the replica's watermark at promotion (baseline: at
	// the end of the run).
	ReplicaSeq uint64 `json:"replica_seq"`
	// DroppedRecords is the lag-window records the crash lost.
	DroppedRecords int `json:"dropped_records"`
	// Tested counts work performed, not coverage: commits whose
	// checkpoint records died in the lag window are re-tested after
	// promotion, so Tested may exceed the total keyspace.
	Tested     uint64  `json:"tested"`
	Commits    uint64  `json:"commits"`
	JobsDone   int     `json:"jobs_done"`
	FoundJobs  int     `json:"found_jobs"`
	TimeToFind float64 `json:"time_to_find_s"` // -1 = never
}

// failover is one in-progress rehearsal.
type failover struct {
	cfg   FailoverConfig
	eng   *sim.Engine
	clock *sim.Virtual

	svc  *jobs.Service // the active service (master, then promoted)
	link *shardplane.Link
	rep  *jobs.Replica
	fol  *shardplane.Follower

	execs []jobs.Executor
	ws    []failWorker
	idle  []int32
	gen   uint64 // bumped at crash: invalidates every scheduled completion

	down     bool // between crash and promotion
	promoted bool
	err      error // first fatal failure, sticky; reported after the engine drains

	plants    map[string]uint64
	foundJobs map[string]bool
	doneJobs  map[string]bool

	// Exactness audit: the promotion-time remaining set per job, and
	// the spans the promoted service committed against it.
	remaining map[string][]keyspace.Interval
	spans     map[string][]keyspace.Interval

	res FailoverResult
}

type failWorker struct {
	tput  float64
	has   bool
	idle  bool
	epoch uint64
	lease jobs.Lease
}

// RehearseFailover runs one configured rehearsal to completion in
// virtual time and audits the exactly-once invariant: every lease the
// promoted service commits must tile the promotion-time remaining set
// exactly — no gap, no overlap, no key outside it. Deterministic for a
// fixed config (fresh directories assumed).
func RehearseFailover(cfg FailoverConfig) (*FailoverResult, error) {
	if cfg.Workers <= 0 {
		return nil, errors.New("fleetsim: Workers must be positive")
	}
	if cfg.TputMin <= 0 || cfg.TputMax < cfg.TputMin {
		return nil, fmt.Errorf("fleetsim: bad throughput range [%v, %v]", cfg.TputMin, cfg.TputMax)
	}
	if len(cfg.Submissions) == 0 {
		return nil, errors.New("fleetsim: no submissions")
	}
	if cfg.MasterDir == "" || cfg.ReplicaDir == "" || cfg.MasterDir == cfg.ReplicaDir {
		return nil, errors.New("fleetsim: MasterDir and ReplicaDir must be distinct")
	}
	if cfg.CrashAt >= 0 && cfg.DetectAfter < 0 {
		return nil, errors.New("fleetsim: negative DetectAfter")
	}

	eng := sim.NewEngine()
	if cfg.EventBudget > 0 {
		eng.SetBudget(cfg.EventBudget)
	}
	f := &failover{
		cfg:       cfg,
		eng:       eng,
		clock:     sim.NewVirtual(eng, time.Time{}),
		ws:        make([]failWorker, cfg.Workers),
		plants:    make(map[string]uint64),
		foundJobs: make(map[string]bool),
		doneJobs:  make(map[string]bool),
		remaining: make(map[string][]keyspace.Interval),
		spans:     make(map[string][]keyspace.Interval),
	}
	f.res = FailoverResult{CrashAt: -1, PromotedAt: -1, FirstCommitAfter: -1, TimeToFind: -1}

	rng := rand.New(rand.NewSource(cfg.Seed))
	f.execs = make([]jobs.Executor, cfg.Workers)
	for i := range f.ws {
		tput := cfg.TputMin + rng.Float64()*(cfg.TputMax-cfg.TputMin)
		f.ws[i] = failWorker{tput: tput}
		f.execs[i] = &simExec{
			name: fmt.Sprintf("w%06d", i),
			tn:   core.Tuning{MinBatch: uint64(tput*cfg.leaseSeconds()) + 1, Throughput: tput},
		}
	}

	// Replica first, then the master wired to feed it through the real
	// frame codec via the synchronous link.
	rep, err := jobs.OpenReplica(cfg.ReplicaDir, jobs.ReplicaOptions{NoSync: true})
	if err != nil {
		return nil, err
	}
	f.rep = rep
	f.fol = shardplane.NewFollower(rep)
	f.link = shardplane.NewLink(f.fol, cfg.ReplLag)

	store, err := jobs.Open(cfg.MasterDir, jobs.StoreOptions{
		NoSync:   true,
		Clock:    f.clock,
		OnAppend: f.link.OnAppend,
	})
	if err != nil {
		rep.Close()
		return nil, err
	}
	if err := f.link.Seed(store.ExportSnapshot); err != nil {
		store.Close()
		rep.Close()
		return nil, err
	}
	f.svc = jobs.NewService(store, f.execs, f.serviceOptions(false))
	if err := f.svc.StartManual(context.Background()); err != nil {
		store.Close()
		rep.Close()
		return nil, err
	}

	for _, sub := range cfg.Submissions {
		sub := sub
		eng.Schedule(sub.At, func() { f.submit(sub) })
	}
	eng.Schedule(0, func() {
		for i := range f.ws {
			f.tryStart(int32(i))
		}
	})
	if cfg.CrashAt >= 0 {
		eng.Schedule(cfg.CrashAt, f.crash)
		eng.Schedule(cfg.CrashAt+cfg.DetectAfter, f.promote)
	}

	f.res.EngineEnd = eng.Run()
	if eng.BudgetExceeded() {
		return nil, fmt.Errorf("fleetsim: event budget of %d exceeded at t=%v (runaway rehearsal)", cfg.EventBudget, eng.Now())
	}
	if err := f.link.Err(); err != nil {
		return nil, fmt.Errorf("fleetsim: replication link failed: %w", err)
	}
	if f.err != nil {
		return nil, f.err
	}
	if f.promoted {
		if err := f.auditTiling(); err != nil {
			return nil, err
		}
	} else {
		// Baseline: record where the tail ended up.
		f.res.ReplicaSeq = f.fol.Seq()
		f.rep.Close()
	}
	f.res.JobsDone = len(f.doneJobs)
	f.res.FoundJobs = len(f.foundJobs)
	if err := f.svc.Shutdown(context.Background()); err != nil && !f.down {
		return nil, err
	}
	store.Close() // the abandoned master store, when a crash happened
	res := f.res
	return &res, nil
}

func (f *failover) serviceOptions(promoted bool) jobs.Options {
	return jobs.Options{
		Clock:           f.clock,
		CheckpointEvery: f.cfg.CheckpointEvery,
		OnCommit: func(jobID, tenant string, iv keyspace.Interval, tested uint64) {
			if promoted {
				f.spans[jobID] = append(f.spans[jobID], iv.Clone())
				if f.res.FirstCommitAfter < 0 {
					f.res.FirstCommitAfter = f.eng.Now()
				}
			}
			if f.cfg.OnCommit != nil {
				f.cfg.OnCommit(promoted, jobID, tenant, iv, tested)
			}
		},
		OnRequeue: func(string) { f.wake() },
	}
}

func (f *failover) submit(sub Submission) {
	if f.down {
		return // the control plane is dead; this submission is lost
	}
	j, err := f.svc.Submit(sub.Tenant, sub.Priority, sub.Spec)
	if err != nil {
		return
	}
	if sub.Plant >= 0 {
		f.plants[j.ID] = uint64(sub.Plant)
	}
	f.wake()
}

func (f *failover) wake() {
	if len(f.idle) == 0 {
		return
	}
	f.eng.Schedule(0, func() {
		for len(f.idle) > 0 {
			i := f.idle[len(f.idle)-1]
			f.idle = f.idle[:len(f.idle)-1]
			if w := &f.ws[i]; w.idle && !w.has {
				w.idle = false
				f.tryStart(i)
				return
			}
		}
	})
}

func (f *failover) tryStart(i int32) {
	w := &f.ws[i]
	if f.down || w.has {
		return
	}
	l, ok := f.svc.TryLease(int(i))
	if !ok {
		if !w.idle {
			w.idle = true
			f.idle = append(f.idle, i)
		}
		return
	}
	w.has, w.idle = true, false
	w.lease = l
	w.epoch++
	ep, gen := w.epoch, f.gen
	f.eng.Schedule(float64(l.N)/w.tput, func() { f.complete(i, ep, gen) })
	f.wake() // one success chains the next idle attempt
}

func (f *failover) complete(i int32, epoch, gen uint64) {
	w := &f.ws[i]
	if gen != f.gen || epoch != w.epoch || !w.has {
		return // the crash superseded this completion
	}
	l := w.lease
	w.has = false
	rep := &dispatch.Report{Tested: l.N}
	lo := l.Interval.Start.Uint64()
	if p, ok := f.plants[l.JobID]; ok && p >= lo && p < lo+l.N {
		rep.Found = [][]byte{[]byte(fmt.Sprintf("plant@%d", p))}
	}
	if f.svc.Commit(l, rep) {
		f.res.Commits++
		f.res.Tested += l.N
		f.res.Makespan = f.eng.Now()
		if len(rep.Found) > 0 {
			f.foundJobs[l.JobID] = true
			if f.res.TimeToFind < 0 {
				f.res.TimeToFind = f.eng.Now()
			}
		}
		f.checkJobDone(l.JobID)
	}
	f.tryStart(i)
}

func (f *failover) checkJobDone(jobID string) {
	if f.doneJobs[jobID] {
		return
	}
	if j, err := f.svc.Get(jobID); err == nil && j.State.Terminal() {
		f.doneJobs[jobID] = true
	}
}

// crash kills the master mid-flight: every in-flight lease dies with
// it, and the replication lag window — records appended but not yet
// applied to the replica — is lost, exactly like unflushed frames on a
// severed connection.
func (f *failover) crash() {
	f.down = true
	f.gen++
	f.svc.Kill()
	f.res.DroppedRecords = f.link.Drop()
	f.res.CrashAt = f.eng.Now()
	for i := range f.ws {
		f.ws[i].has, f.ws[i].idle = false, false
	}
	f.idle = f.idle[:0]
}

// promote closes the replica and runs ordinary crash recovery over its
// directory — never touching the master's disk — then records the
// remaining set the exactness audit will check the promoted commits
// against, and puts the fleet back to work.
func (f *failover) promote() {
	f.res.ReplicaSeq = f.rep.Seq()
	if err := f.rep.Close(); err != nil {
		f.err = fmt.Errorf("fleetsim: closing replica: %w", err)
		return
	}
	store, err := jobs.Open(f.cfg.ReplicaDir, jobs.StoreOptions{NoSync: true, Clock: f.clock})
	if err != nil {
		f.err = fmt.Errorf("fleetsim: promoting replica: %w", err)
		return
	}
	for _, j := range store.List("") {
		cp, err := store.Progress(j.ID)
		if err != nil {
			f.err = err
			return
		}
		ivs, err := cp.Intervals()
		if err != nil {
			f.err = err
			return
		}
		f.remaining[j.ID] = ivs
	}
	f.svc = jobs.NewService(store, f.execs, f.serviceOptions(true))
	if err := f.svc.StartManual(context.Background()); err != nil {
		f.err = err
		return
	}
	f.down = false
	f.promoted = true
	f.res.PromotedAt = f.eng.Now()
	for i := range f.ws {
		f.tryStart(int32(i))
	}
}

// auditTiling proves the exactly-once invariant: per job, the sorted
// promoted-phase spans must walk the promotion-time remaining set end
// to end with no gap, no overlap, and no span outside it.
func (f *failover) auditTiling() error {
	ids := make([]string, 0, len(f.remaining))
	for id := range f.remaining {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := tileError(id, f.remaining[id], f.spans[id]); err != nil {
			return err
		}
	}
	for id := range f.spans {
		if _, ok := f.remaining[id]; !ok {
			return fmt.Errorf("fleetsim: promoted commit on job %s, which had no remaining set at promotion", id)
		}
	}
	return nil
}

func tileError(jobID string, expected, spans []keyspace.Interval) error {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Cmp(spans[j].Start) < 0 })
	sort.Slice(expected, func(i, j int) bool { return expected[i].Start.Cmp(expected[j].Start) < 0 })
	si := 0
	for _, want := range expected {
		cursor := new(big.Int).Set(want.Start)
		for cursor.Cmp(want.End) < 0 {
			if si >= len(spans) {
				return fmt.Errorf("fleetsim: job %s: coverage gap at %s in [%s,%s)", jobID, cursor, want.Start, want.End)
			}
			sp := spans[si]
			if sp.Start.Cmp(cursor) != 0 {
				return fmt.Errorf("fleetsim: job %s: span starts at %s, cursor at %s (gap or overlap)", jobID, sp.Start, cursor)
			}
			if sp.End.Cmp(want.End) > 0 {
				return fmt.Errorf("fleetsim: job %s: span [%s,%s) crosses remaining-interval end %s", jobID, sp.Start, sp.End, want.End)
			}
			cursor.Set(sp.End)
			si++
		}
	}
	if si != len(spans) {
		return fmt.Errorf("fleetsim: job %s: %d committed spans beyond the remaining set", jobID, len(spans)-si)
	}
	return nil
}
