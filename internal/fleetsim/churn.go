// Package fleetsim stress-tests the job service at fleet scale: it
// models 10⁵–10⁶ heterogeneous workers with seeded churn and drives
// the REAL jobs.Service — scheduler, WAL-backed store, lease
// accounting — through the discrete-event engine of internal/sim, so
// hours of fleet time and hundreds of thousands of scheduling
// decisions replay deterministically in seconds of host time. The
// same seed produces the same event trace, byte for byte.
package fleetsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"sort"
)

// ChurnKind classifies one fleet membership/perf event.
type ChurnKind uint8

// Churn event kinds. Join brings a down worker back (no-op when up),
// Leave drains a worker gracefully (it finishes its current lease),
// Crash drops a worker instantly (its lease is recovered by the
// service's lease timeout), Slow rescales a worker's throughput by
// Factor (which may be > 1: recovery is churn too).
const (
	ChurnJoin ChurnKind = iota + 1
	ChurnLeave
	ChurnCrash
	ChurnSlow
)

var churnNames = map[ChurnKind]string{
	ChurnJoin:  "join",
	ChurnLeave: "leave",
	ChurnCrash: "crash",
	ChurnSlow:  "slow",
}

// String names the kind.
func (k ChurnKind) String() string {
	if n, ok := churnNames[k]; ok {
		return n
	}
	return fmt.Sprintf("churn(%d)", uint8(k))
}

// Valid reports whether the kind is defined.
func (k ChurnKind) Valid() bool { _, ok := churnNames[k]; return ok }

// ChurnEvent is one scheduled perturbation of the fleet.
type ChurnEvent struct {
	At     float64   // virtual seconds from fleet start
	Worker uint32    // target worker index
	Kind   ChurnKind // what happens
	Factor float64   // Slow only: throughput multiplier
}

// ChurnOptions tune schedule generation. Rates are expected events
// per worker over the horizon, so doubling the fleet doubles the
// absolute churn, matching how real fleets fail.
type ChurnOptions struct {
	Horizon   float64 // virtual seconds the schedule spans
	LeaveRate float64 // graceful departures per worker
	JoinRate  float64 // rejoins per worker
	CrashRate float64 // hard crashes per worker
	SlowRate  float64 // throughput rescales per worker
	// SlowMin/SlowMax bound the Slow factor (defaults 0.2 / 1.5).
	SlowMin, SlowMax float64
}

func (o ChurnOptions) slowMin() float64 {
	if o.SlowMin <= 0 {
		return 0.2
	}
	return o.SlowMin
}

func (o ChurnOptions) slowMax() float64 {
	if o.SlowMax <= 0 {
		return 1.5
	}
	return o.SlowMax
}

// HasCrash reports whether the options can emit Crash events (which
// require the driven service to run a lease timeout).
func (o ChurnOptions) HasCrash() bool { return o.CrashRate > 0 }

// GenerateChurn builds a deterministic churn schedule: the same
// (seed, workers, opts) triple always yields the same events in the
// same order, which is the foundation of the replayable fleet traces.
// Events are sorted by time, then worker, then kind.
func GenerateChurn(seed int64, workers int, opts ChurnOptions) []ChurnEvent {
	if workers <= 0 || opts.Horizon <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	count := func(rate float64) int { return int(rate * float64(workers)) }
	var evs []ChurnEvent
	emit := func(n int, kind ChurnKind) {
		for i := 0; i < n; i++ {
			ev := ChurnEvent{
				At:     rng.Float64() * opts.Horizon,
				Worker: uint32(rng.Intn(workers)),
				Kind:   kind,
			}
			if kind == ChurnSlow {
				lo, hi := opts.slowMin(), opts.slowMax()
				ev.Factor = lo + rng.Float64()*(hi-lo)
			}
			evs = append(evs, ev)
		}
	}
	emit(count(opts.LeaveRate), ChurnLeave)
	emit(count(opts.JoinRate), ChurnJoin)
	emit(count(opts.CrashRate), ChurnCrash)
	emit(count(opts.SlowRate), ChurnSlow)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		if evs[i].Worker != evs[j].Worker {
			return evs[i].Worker < evs[j].Worker
		}
		return evs[i].Kind < evs[j].Kind
	})
	return evs
}

// Churn schedule wire format: magic + count + fixed-width events +
// CRC32 trailer over everything before it. Fixed-width binary (not
// JSON) so "same seed → byte-identical schedule" is checkable with a
// byte compare and fuzzable without parser ambiguity.
const churnMagic = "FSCH1"

const churnEventSize = 8 + 4 + 1 + 8 // At, Worker, Kind, Factor

// ErrChurnCorrupt reports a schedule blob that fails validation.
var ErrChurnCorrupt = errors.New("fleetsim: corrupt churn schedule")

// EncodeChurn serializes a schedule.
func EncodeChurn(evs []ChurnEvent) []byte {
	buf := make([]byte, 0, len(churnMagic)+4+len(evs)*churnEventSize+4)
	buf = append(buf, churnMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(evs)))
	for _, ev := range evs {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(ev.At))
		buf = binary.BigEndian.AppendUint32(buf, ev.Worker)
		buf = append(buf, byte(ev.Kind))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(ev.Factor))
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeChurn parses and validates a schedule blob: magic, length,
// checksum, and per-event sanity (defined kind, finite non-negative
// time, finite factor). A valid blob round-trips byte-identically
// through EncodeChurn.
func DecodeChurn(b []byte) ([]ChurnEvent, error) {
	if len(b) < len(churnMagic)+4+4 {
		return nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrChurnCorrupt, len(b))
	}
	if string(b[:len(churnMagic)]) != churnMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrChurnCorrupt)
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, content %08x)", ErrChurnCorrupt, want, got)
	}
	n := binary.BigEndian.Uint32(b[len(churnMagic):])
	payload := body[len(churnMagic)+4:]
	if int64(len(payload)) != int64(n)*churnEventSize {
		return nil, fmt.Errorf("%w: %d events need %d payload bytes, have %d", ErrChurnCorrupt, n, int64(n)*churnEventSize, len(payload))
	}
	evs := make([]ChurnEvent, 0, n)
	for i := 0; i < int(n); i++ {
		p := payload[i*churnEventSize:]
		ev := ChurnEvent{
			At:     math.Float64frombits(binary.BigEndian.Uint64(p)),
			Worker: binary.BigEndian.Uint32(p[8:]),
			Kind:   ChurnKind(p[12]),
			Factor: math.Float64frombits(binary.BigEndian.Uint64(p[13:])),
		}
		if !ev.Kind.Valid() {
			return nil, fmt.Errorf("%w: event %d: unknown kind %d", ErrChurnCorrupt, i, p[12])
		}
		if math.IsNaN(ev.At) || math.IsInf(ev.At, 0) || ev.At < 0 {
			return nil, fmt.Errorf("%w: event %d: bad time %v", ErrChurnCorrupt, i, ev.At)
		}
		if math.IsNaN(ev.Factor) || math.IsInf(ev.Factor, 0) {
			return nil, fmt.Errorf("%w: event %d: bad factor", ErrChurnCorrupt, i)
		}
		evs = append(evs, ev)
	}
	return evs, nil
}
