package fleetsim

import (
	"math/big"
	"sort"
	"sync"
	"testing"

	"keysearch/internal/keyspace"
)

// TestFleetExactCoverageWithQuantizedProgress is the span audit for the
// progress-cadence model: with ProgressEvery set, a thief plans its
// split from the victim's last quantized mark, and whenever that mark is
// stale the handshake settles at the victim's true progress — a cut
// landing exactly on the boundary the victim has just finished. A coarse
// cadence makes that boundary case the common one, so this run audits
// it in bulk: every committed span must still tile the keyspace exactly
// once, with no gap, overlap, or double count, and the whole trajectory
// must stay deterministic.
func TestFleetExactCoverageWithQuantizedProgress(t *testing.T) {
	type span struct{ lo, hi uint64 }
	var mu sync.Mutex
	var spans []span

	run := func(dir string, record bool) *Result {
		cfg := churnedConfig(1000, "abc", 14, 33, true, dir)
		// Coarse marks: a lease lasts tens of virtual seconds, so a 20s
		// cadence leaves most thieves planning from stale knowledge and
		// forces the cut-at-true-progress boundary case constantly.
		cfg.ProgressEvery = 20
		if record {
			cfg.OnCommit = func(jobID, tenant string, iv keyspace.Interval, tested uint64) {
				lo := iv.Start.Uint64()
				hi := new(big.Int).Set(iv.End).Uint64()
				mu.Lock()
				spans = append(spans, span{lo, hi})
				mu.Unlock()
			}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := run(t.TempDir(), true)
	if res.JobsDone != 1 {
		t.Fatalf("job did not complete (JobsDone = %d)", res.JobsDone)
	}
	if res.Steals == 0 {
		t.Fatal("quantized-progress run recorded no steals")
	}

	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	want := spaceSize(t, simSpec("abc", 14, true, 0))
	var at, total uint64
	for i, s := range spans {
		if s.lo != at {
			t.Fatalf("span %d starts at %d, want %d (gap or overlap)", i, s.lo, at)
		}
		if s.hi <= s.lo {
			t.Fatalf("span %d is empty or inverted [%d,%d)", i, s.lo, s.hi)
		}
		at = s.hi
		total += s.hi - s.lo
	}
	if at != want || total != want {
		t.Fatalf("committed spans cover [0,%d), sum %d; want exactly [0,%d)", at, total, want)
	}
	if res.Tested != want {
		t.Fatalf("Tested = %d, want %d", res.Tested, want)
	}

	// The cadence model must not cost determinism: same config, same
	// trace, same steal log.
	res2 := run(t.TempDir(), false)
	if res.TraceDigest != res2.TraceDigest || res.StealDigest != res2.StealDigest {
		t.Fatalf("quantized-progress trace diverged: %s/%s vs %s/%s",
			res.TraceDigest, res.StealDigest, res2.TraceDigest, res2.StealDigest)
	}
}

// TestFleetProgressCadenceChangesPlanNotCoverage: turning the cadence
// knob reshapes the steal schedule (different splits, different trace)
// but never the invariant — the space is covered exactly once either
// way. A cadence of zero must reproduce the legacy continuous-knowledge
// digests bit for bit, pinning that the model is opt-in.
func TestFleetProgressCadenceChangesPlanNotCoverage(t *testing.T) {
	base := func(dir string, cadence float64) *Result {
		cfg := churnedConfig(800, "abc", 13, 5, true, dir)
		cfg.ProgressEvery = cadence
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.JobsDone != 1 {
			t.Fatalf("cadence %g: job did not complete", cadence)
		}
		want := spaceSize(t, simSpec("abc", 13, true, 0))
		if res.Tested != want {
			t.Fatalf("cadence %g: Tested = %d, want %d", cadence, res.Tested, want)
		}
		return res
	}

	continuous := base(t.TempDir(), 0)
	continuous2 := base(t.TempDir(), 0)
	if continuous.TraceDigest != continuous2.TraceDigest {
		t.Fatal("continuous runs are not deterministic")
	}
	quantized := base(t.TempDir(), 15)
	if quantized.TraceDigest == continuous.TraceDigest && quantized.Steals == continuous.Steals &&
		quantized.StealDigest == continuous.StealDigest {
		t.Fatal("a 15s progress cadence left the steal schedule untouched — the knob is not wired")
	}
}
