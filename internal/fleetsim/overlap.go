package fleetsim

import (
	"math"
	"math/rand"
	"sort"
)

// Overlap analysis after Stojanovski & Krstevski: K equal-speed agents
// search a unit keyspace, each assigned a contiguous region of size
// (1+f)/K where f is the overlap fraction — f = 0 is the paper's
// disjoint partition, f > 0 makes neighboring regions overlap so a
// target near a boundary is covered by more than one agent. Agents
// scan front to back at one disjoint region (1/K of the space) per
// time unit, and may fail: with probability failProb an agent dies at
// a uniformly random time and never reaches the rest of its region.
//
// The trade the curve quantifies:
//
//   - With no failures, overlap buys nothing: the nearest covering
//     agent always reaches the target first, so mean time-to-find
//     stays flat while makespan grows as (1+f) — every overlapped key
//     is pure duplicated work.
//   - With failures, overlap is redundancy: a target orphaned by its
//     agent's death is still reached by the overlapping neighbor, so
//     the miss rate falls as f grows — at the same (1+f) makespan
//     cost.
//
// The paper's fleet answers failures with requeue-based recovery
// (lease timeouts re-issue orphaned intervals) instead of static
// redundancy, paying the duplicate work only when a failure actually
// happens; fleetsim's churned runs measure that path.

// OverlapPoint is one sampled point of the overlap trade-off curve.
type OverlapPoint struct {
	Overlap     float64 `json:"overlap"`        // fraction f of each region duplicated
	MeanTTF     float64 `json:"mean_ttf"`       // mean time-to-find over found targets
	P95TTF      float64 `json:"p95_ttf"`        // 95th percentile time-to-find (found targets)
	MissRate    float64 `json:"miss_rate"`      // fraction of targets never reached
	Makespan    float64 `json:"makespan"`       // exhaustive-sweep duration, (1+f)
	DupFraction float64 `json:"duplicate_work"` // fraction of scanned keys that were duplicates
}

// OverlapCurve Monte-Carlo samples the trade-off: agents agents,
// trials uniformly placed targets per overlap fraction, each agent
// failing mid-sweep with probability failProb. Deterministic in seed.
func OverlapCurve(seed int64, agents, trials int, failProb float64, overlaps []float64) []OverlapPoint {
	if agents <= 0 || trials <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	k := float64(agents)
	out := make([]OverlapPoint, 0, len(overlaps))
	deadline := make([]float64, agents)
	for _, f := range overlaps {
		if f < 0 {
			f = 0
		}
		region := (1 + f) / k
		makespan := 1 + f
		var ttfs []float64
		sum, misses := 0.0, 0
		for t := 0; t < trials; t++ {
			// Fresh failure draw per trial: an agent that fails stops at
			// deadline[j]; a healthy one completes the sweep.
			for j := range deadline {
				if failProb > 0 && rng.Float64() < failProb {
					deadline[j] = rng.Float64() * makespan
				} else {
					deadline[j] = makespan
				}
			}
			u := rng.Float64() // target position in the unit keyspace
			best := math.Inf(1)
			for j := 0; j < agents; j++ {
				start := float64(j) / k
				d := u - start
				if d < 0 {
					d += 1
				}
				if d >= region {
					continue // agent j never scans u
				}
				// Offset d into the region is reached at time d·k — if the
				// agent lives that long.
				if at := d * k; at <= deadline[j] && at < best {
					best = at
				}
			}
			if math.IsInf(best, 1) {
				misses++
				continue
			}
			ttfs = append(ttfs, best)
			sum += best
		}
		pt := OverlapPoint{
			Overlap:     f,
			MissRate:    float64(misses) / float64(trials),
			Makespan:    makespan,
			DupFraction: f / (1 + f),
		}
		if len(ttfs) > 0 {
			sort.Float64s(ttfs)
			pt.MeanTTF = sum / float64(len(ttfs))
			pt.P95TTF = ttfs[(len(ttfs)*95)/100]
		}
		out = append(out, pt)
	}
	return out
}
