package fleetsim

import (
	"bytes"
	"errors"
	"testing"
)

func TestGenerateChurnDeterministic(t *testing.T) {
	opts := ChurnOptions{Horizon: 100, LeaveRate: 0.1, JoinRate: 0.2, CrashRate: 0.05, SlowRate: 0.3}
	a := GenerateChurn(42, 500, opts)
	b := GenerateChurn(42, 500, opts)
	if len(a) == 0 {
		t.Fatal("no events generated")
	}
	ea, eb := EncodeChurn(a), EncodeChurn(b)
	if !bytes.Equal(ea, eb) {
		t.Fatal("same seed produced different encoded schedules")
	}
	if c := GenerateChurn(43, 500, opts); bytes.Equal(ea, EncodeChurn(c)) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Sorted by time.
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule out of order at %d: %v after %v", i, a[i].At, a[i-1].At)
		}
	}
}

func TestChurnCodecRoundTrip(t *testing.T) {
	evs := GenerateChurn(7, 100, ChurnOptions{Horizon: 50, CrashRate: 0.2, SlowRate: 0.5, JoinRate: 0.3})
	blob := EncodeChurn(evs)
	got, err := DecodeChurn(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], evs[i])
		}
	}
	if !bytes.Equal(EncodeChurn(got), blob) {
		t.Fatal("re-encode is not byte-identical")
	}
	// Empty schedules round-trip too.
	if evs2, err := DecodeChurn(EncodeChurn(nil)); err != nil || len(evs2) != 0 {
		t.Fatalf("empty round-trip: %v, %d events", err, len(evs2))
	}
}

func TestChurnCodecRejectsDamage(t *testing.T) {
	blob := EncodeChurn(GenerateChurn(9, 50, ChurnOptions{Horizon: 10, SlowRate: 1}))
	cases := map[string][]byte{
		"truncated":   blob[:len(blob)-5],
		"empty":       {},
		"bad magic":   append([]byte("XXCH1"), blob[5:]...),
		"flipped bit": flipBit(blob, len(blob)/2),
		"bad trailer": flipBit(blob, len(blob)-1),
	}
	for name, b := range cases {
		if _, err := DecodeChurn(b); !errors.Is(err, ErrChurnCorrupt) {
			t.Errorf("%s: got %v, want ErrChurnCorrupt", name, err)
		}
	}
}

func flipBit(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0x40
	return c
}

// FuzzChurnCodec: any blob either fails to decode or round-trips
// byte-identically; the decoder never panics or accepts garbage that
// re-encodes differently.
func FuzzChurnCodec(f *testing.F) {
	f.Add(EncodeChurn(nil))
	f.Add(EncodeChurn(GenerateChurn(1, 10, ChurnOptions{Horizon: 5, CrashRate: 0.5})))
	f.Add(EncodeChurn(GenerateChurn(2, 100, ChurnOptions{Horizon: 100, SlowRate: 1, JoinRate: 1, LeaveRate: 1})))
	f.Add([]byte("FSCH1junk"))
	f.Fuzz(func(t *testing.T, blob []byte) {
		evs, err := DecodeChurn(blob)
		if err != nil {
			return
		}
		again := EncodeChurn(evs)
		if !bytes.Equal(again, blob) {
			t.Fatalf("accepted blob does not round-trip: %d bytes in, %d out", len(blob), len(again))
		}
	})
}
