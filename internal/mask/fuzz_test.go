package mask

import "testing"

// FuzzParse: arbitrary mask specs must never panic, and accepted masks
// must unrank/rank consistently at the boundaries.
func FuzzParse(f *testing.F) {
	f.Add("?u?l?d")
	f.Add("a?sb")
	f.Add("???")
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := Parse(spec)
		if err != nil {
			return
		}
		for _, id := range []uint64{0, m.Size64() - 1, m.Size64() / 2} {
			key, err := m.AppendKey(nil, id)
			if err != nil {
				t.Fatalf("AppendKey(%d): %v", id, err)
			}
			back, err := m.ID(key)
			if err != nil || back != id {
				t.Fatalf("ID(key(%d)) = %d, %v", id, back, err)
			}
		}
	})
}
