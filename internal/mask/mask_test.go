package mask

import (
	"context"
	"math/big"
	"testing"

	"keysearch/internal/core"
	"keysearch/internal/cracker"
	"keysearch/internal/keyspace"
)

func TestParse(t *testing.T) {
	m, err := Parse("?u?l?d")
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 || m.Size64() != 26*26*10 {
		t.Errorf("len=%d size=%d", m.Len(), m.Size64())
	}
	lit, err := Parse("a?db")
	if err != nil {
		t.Fatal(err)
	}
	if lit.Size64() != 10 {
		t.Errorf("literal mask size = %d", lit.Size64())
	}
	qm, err := Parse("???d") // "??" is a literal '?'
	if err != nil {
		t.Fatal(err)
	}
	if qm.Len() != 2 || qm.Size64() != 10 {
		t.Errorf("?? mask: len=%d size=%d", qm.Len(), qm.Size64())
	}
	for _, bad := range []string{"", "?x", "?"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
	if _, err := Parse("?a?a?a?a?a?a?a?a?a?a?a?a?a?a?a?a?a?a?a?a?a"); err == nil {
		t.Error("21-position mask accepted")
	}
}

func TestAppendKeyAndID(t *testing.T) {
	m := MustParse("?u?d")
	first, err := m.AppendKey(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != "A0" {
		t.Errorf("key(0) = %q", first)
	}
	// First position fastest: id 1 -> "B0".
	second, _ := m.AppendKey(nil, 1)
	if string(second) != "B0" {
		t.Errorf("key(1) = %q", second)
	}
	last, _ := m.AppendKey(nil, m.Size64()-1)
	if string(last) != "Z9" {
		t.Errorf("key(last) = %q", last)
	}
	if _, err := m.AppendKey(nil, m.Size64()); err == nil {
		t.Error("out-of-range id accepted")
	}
	// Round trip on the whole space.
	var buf []byte
	for id := uint64(0); id < m.Size64(); id++ {
		buf, _ = m.AppendKey(buf[:0], id)
		back, err := m.ID(buf)
		if err != nil || back != id {
			t.Fatalf("ID(key(%d)) = %d, %v", id, back, err)
		}
	}
}

func TestMatches(t *testing.T) {
	m := MustParse("?u?l?l?d")
	if !m.Matches([]byte("Abc7")) {
		t.Error("Abc7 should match ?u?l?l?d")
	}
	for _, bad := range []string{"abc7", "ABC7", "Abcd", "Abc77", "Ab7"} {
		if m.Matches([]byte(bad)) {
			t.Errorf("%q should not match", bad)
		}
	}
}

func TestEnumeratorNextMatchesSeek(t *testing.T) {
	m := MustParse("?d?u?d")
	e := m.Factory().NewEnumerator()
	if err := e.Seek(big.NewInt(0)); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for id := uint64(0); id < m.Size64(); id++ {
		buf, _ = m.AppendKey(buf[:0], id)
		if string(e.Candidate()) != string(buf) {
			t.Fatalf("id %d: walk %q, unrank %q", id, e.Candidate(), buf)
		}
		if (id < m.Size64()-1) != e.Next() {
			t.Fatalf("Next at %d", id)
		}
	}
}

// TestMaskCrackEndToEnd cracks a "Pass12"-shaped password through the
// standard engine — the hybrid-pattern attack of the introduction.
func TestMaskCrackEndToEnd(t *testing.T) {
	password := []byte("Zx97")
	target := cracker.SHA1.HashKey(password)
	m := MustParse("?u?l?d?d")
	factory := func() core.TestFunc {
		k, _ := cracker.NewKernel(cracker.SHA1, cracker.KernelOptimized, target)
		return k.Test
	}
	res, err := core.SearchEach(context.Background(), m.Factory(),
		keyspace.Interval{Start: new(big.Int), End: m.Size()}, factory,
		core.Options{Workers: 4, MaxSolutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || string(res.Solutions[0]) != "Zx97" {
		t.Errorf("solutions = %q", res.Solutions)
	}
	// The mask space is a sliver of the full printable space of the same
	// length — the point of pattern attacks.
	full := new(big.Int).Exp(big.NewInt(95), big.NewInt(4), nil)
	if new(big.Int).Div(full, m.Size()).Int64() < 100 {
		t.Error("mask space not much smaller than full space")
	}
}
