// Package mask implements per-position charset ("mask") attacks — the
// "list of common password patterns" the paper's introduction pairs with
// dictionaries: most human passwords follow shapes like
// Uppercase-lowercase...-digit-digit, so enumerating one shape at a time
// visits a tiny, high-yield slice of the full space.
//
// A mask is written in the conventional syntax:
//
//	?l lowercase   ?u uppercase   ?d digit   ?s symbol   ?a printable
//	any other byte matches itself (literal)
//
// e.g. "?u?l?l?l?d?d" for "Pass12"-shaped keys. Masks are Spaces with
// dense identifiers (first position fastest, matching the paper's
// prefix-major order), so they plug into the same search engine,
// dispatcher and wire protocol as plain brute force.
package mask

import (
	"errors"
	"fmt"
	"math/big"

	"keysearch/internal/core"
	"keysearch/internal/keyspace"
)

// Position is the candidate set of one key position.
type Position struct {
	symbols []byte
}

// builtin charset classes.
var classes = map[byte]string{
	'l': "abcdefghijklmnopqrstuvwxyz",
	'u': "ABCDEFGHIJKLMNOPQRSTUVWXYZ",
	'd': "0123456789",
	's': " !\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~",
}

func init() {
	all := classes['l'] + classes['u'] + classes['d'] + classes['s']
	classes['a'] = all
}

// Mask is a sequence of per-position candidate sets.
type Mask struct {
	positions []Position
	size      uint64
}

// Parse compiles a mask string.
func Parse(spec string) (*Mask, error) {
	if spec == "" {
		return nil, errors.New("mask: empty mask")
	}
	m := &Mask{size: 1}
	for i := 0; i < len(spec); i++ {
		var syms string
		if spec[i] == '?' {
			if i+1 >= len(spec) {
				return nil, errors.New("mask: dangling '?'")
			}
			i++
			if spec[i] == '?' {
				syms = "?" // literal question mark
			} else {
				var ok bool
				syms, ok = classes[spec[i]]
				if !ok {
					return nil, fmt.Errorf("mask: unknown class ?%c", spec[i])
				}
			}
		} else {
			syms = spec[i : i+1]
		}
		if len(m.positions) >= keyspace.MaxKeyLen {
			return nil, fmt.Errorf("mask: longer than %d positions", keyspace.MaxKeyLen)
		}
		m.positions = append(m.positions, Position{symbols: []byte(syms)})
		if m.size > (1<<63)/uint64(len(syms)) {
			return nil, errors.New("mask: space exceeds uint64")
		}
		m.size *= uint64(len(syms))
	}
	return m, nil
}

// MustParse is Parse that panics on error (for constants in tests).
func MustParse(spec string) *Mask {
	m, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return m
}

// Len returns the key length the mask produces.
func (m *Mask) Len() int { return len(m.positions) }

// Size returns the number of candidate keys.
func (m *Mask) Size() *big.Int { return new(big.Int).SetUint64(m.size) }

// Size64 returns the size as a uint64.
func (m *Mask) Size64() uint64 { return m.size }

// AppendKey decodes identifier id (first position least significant, i.e.
// fastest-varying — the property the GPU reversal trick needs).
func (m *Mask) AppendKey(dst []byte, id uint64) ([]byte, error) {
	if id >= m.size {
		return dst, fmt.Errorf("mask: id %d out of range [0, %d)", id, m.size)
	}
	for _, p := range m.positions {
		n := uint64(len(p.symbols))
		dst = append(dst, p.symbols[id%n])
		id /= n
	}
	return dst, nil
}

// ID returns the identifier of key, or an error if key does not match the
// mask.
func (m *Mask) ID(key []byte) (uint64, error) {
	if len(key) != len(m.positions) {
		return 0, fmt.Errorf("mask: key length %d, mask length %d", len(key), len(m.positions))
	}
	var id, mult uint64 = 0, 1
	for i, p := range m.positions {
		idx := -1
		for j, s := range p.symbols {
			if s == key[i] {
				idx = j
				break
			}
		}
		if idx < 0 {
			return 0, fmt.Errorf("mask: byte %q not allowed at position %d", key[i], i)
		}
		id += uint64(idx) * mult
		mult *= uint64(len(p.symbols))
	}
	return id, nil
}

// Matches reports whether key fits the mask.
func (m *Mask) Matches(key []byte) bool {
	_, err := m.ID(key)
	return err == nil
}

// Factory adapts the mask to core.Factory.
func (m *Mask) Factory() core.Factory {
	return core.FuncFactory{
		New:      func() core.Enumerator { return &enum{mask: m} },
		SpaceLen: m.Size(),
	}
}

type enum struct {
	mask *Mask
	id   uint64
	buf  []byte
}

// Seek positions the enumerator at identifier id.
func (e *enum) Seek(id *big.Int) error {
	if !id.IsUint64() {
		return fmt.Errorf("mask: id %v out of range", id)
	}
	e.id = id.Uint64()
	var err error
	e.buf, err = e.mask.AppendKey(e.buf[:0], e.id)
	return err
}

// Candidate returns the current key.
func (e *enum) Candidate() []byte { return e.buf }

// Next advances with the cheap increment: usually only the first position
// mutates (the mask analogue of Figure 2).
func (e *enum) Next() bool {
	if e.id+1 >= e.mask.size {
		return false
	}
	e.id++
	for i, p := range e.mask.positions {
		n := len(p.symbols)
		idx := 0
		for j, s := range p.symbols {
			if s == e.buf[i] {
				idx = j
				break
			}
		}
		if idx+1 < n {
			e.buf[i] = p.symbols[idx+1]
			return true
		}
		e.buf[i] = p.symbols[0]
	}
	return true // unreachable given the size guard
}
