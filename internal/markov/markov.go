// Package markov implements Markov-chain guided key enumeration, the
// technique the paper's related work singles out (Marechal's "Advances in
// password cracking" and Narayanan–Shmatikov's time-space tradeoff
// dictionary attacks) and that §III.A explicitly leaves room for: "f(i)
// can be trivial or it can follow a heuristics to favor testing of the
// most likely solutions".
//
// A first-order character model assigns every key an integer cost
// (quantized bits of surprisal); the set of keys with cost in a band
// (lo, hi] forms a search space with an *exact bijection* f : [0, size) ->
// keys, implemented by dynamic-programming rank/unrank. Because the space
// still provides dense identifiers, the whole machinery of the paper —
// interval splitting, tuning, balanced dispatch, TCP workers — applies
// unchanged to probability-ordered cracking: search the cheapest band
// first, then widen.
package markov

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"keysearch/internal/core"
	"keysearch/internal/keyspace"
)

// MaxLen is the maximum supported key length (keeps the uint64 ranking
// arithmetic overflow-free for every charset up to 256 symbols).
const MaxLen = 10

// Model is a first-order character model over a charset: quantized
// surprisal costs for the first character and for each transition.
type Model struct {
	cs *keyspace.Charset
	// startCost[d] is the cost of starting with symbol d.
	startCost []int
	// transCost[p][d] is the cost of symbol d following symbol p.
	transCost [][]int
	maxCost   int
}

// Train fits a model on sample words (typically a leaked-password corpus)
// with add-one smoothing. Sample characters outside the charset are
// skipped. The cost unit is one bit of surprisal, rounded.
func Train(samples []string, cs *keyspace.Charset) (*Model, error) {
	if cs == nil {
		return nil, errors.New("markov: nil charset")
	}
	n := cs.Len()
	startN := make([]float64, n)
	transN := make([][]float64, n)
	for i := range transN {
		transN[i] = make([]float64, n)
	}
	for _, w := range samples {
		prev := -1
		for i := 0; i < len(w); i++ {
			d := cs.Index(w[i])
			if d < 0 {
				prev = -1
				continue
			}
			if prev < 0 {
				startN[d]++
			} else {
				transN[prev][d]++
			}
			prev = d
		}
	}

	m := &Model{cs: cs, startCost: make([]int, n), transCost: make([][]int, n)}
	quantize := func(count, total float64) int {
		p := (count + 1) / (total + float64(n)) // add-one smoothing
		c := int(math.Round(-math.Log2(p)))
		if c < 1 {
			c = 1 // every character costs something
		}
		return c
	}
	var startTotal float64
	for _, c := range startN {
		startTotal += c
	}
	for d := 0; d < n; d++ {
		m.startCost[d] = quantize(startN[d], startTotal)
		if m.startCost[d] > m.maxCost {
			m.maxCost = m.startCost[d]
		}
	}
	for p := 0; p < n; p++ {
		m.transCost[p] = make([]int, n)
		var rowTotal float64
		for _, c := range transN[p] {
			rowTotal += c
		}
		for d := 0; d < n; d++ {
			m.transCost[p][d] = quantize(transN[p][d], rowTotal)
			if m.transCost[p][d] > m.maxCost {
				m.maxCost = m.transCost[p][d]
			}
		}
	}
	return m, nil
}

// Charset returns the model's charset.
func (m *Model) Charset() *keyspace.Charset { return m.cs }

// Cost returns the model cost of a key, or an error if a byte is outside
// the charset or the key is empty.
func (m *Model) Cost(key []byte) (int, error) {
	if len(key) == 0 {
		return 0, errors.New("markov: empty key")
	}
	prev := m.cs.Index(key[0])
	if prev < 0 {
		return 0, fmt.Errorf("markov: byte %q not in charset", key[0])
	}
	total := m.startCost[prev]
	for _, b := range key[1:] {
		d := m.cs.Index(b)
		if d < 0 {
			return 0, fmt.Errorf("markov: byte %q not in charset", b)
		}
		total += m.transCost[prev][d]
		prev = d
	}
	return total, nil
}

// Space is the set of keys with length in [minLen, maxLen] and model cost
// in (lo, hi], with dense identifiers: shorter keys first, then by charset
// order. It implements the exact f/rank pair via per-state suffix counts.
type Space struct {
	model          *Model
	minLen, maxLen int
	lo, hi         int

	// cum[r][p][b] = number of length-r suffixes following symbol p with
	// suffix cost <= b (b in 0..hi). p == n is the virtual start state.
	cum [][][]uint64
	// sizeByLen[L] = number of keys of length L in the band.
	sizeByLen []uint64
	size      uint64
}

// NewSpace builds the band space. lo = -1 yields all keys with cost <= hi.
func NewSpace(m *Model, minLen, maxLen, lo, hi int) (*Space, error) {
	if minLen < 1 || maxLen < minLen || maxLen > MaxLen {
		return nil, fmt.Errorf("markov: bad length range [%d, %d]", minLen, maxLen)
	}
	if hi < 0 || lo >= hi {
		return nil, fmt.Errorf("markov: bad cost band (%d, %d]", lo, hi)
	}
	n := m.cs.Len()
	// Overflow guard: total keys <= N^maxLen must fit comfortably.
	if math.Pow(float64(n), float64(maxLen)) > math.MaxUint64/4 {
		return nil, errors.New("markov: charset^maxLen too large for uint64 ranking")
	}

	s := &Space{model: m, minLen: minLen, maxLen: maxLen, lo: lo, hi: hi}
	// Build cumulative suffix counts. State p in [0,n] (n = start state).
	s.cum = make([][][]uint64, maxLen+1)
	for r := 0; r <= maxLen; r++ {
		s.cum[r] = make([][]uint64, n+1)
		for p := 0; p <= n; p++ {
			s.cum[r][p] = make([]uint64, hi+1)
		}
	}
	for p := 0; p <= n; p++ {
		for b := 0; b <= hi; b++ {
			s.cum[0][p][b] = 1 // the empty suffix costs 0
		}
	}
	costOf := func(p, d int) int {
		if p == n {
			return m.startCost[d]
		}
		return m.transCost[p][d]
	}
	for r := 1; r <= maxLen; r++ {
		for p := 0; p <= n; p++ {
			row := s.cum[r][p]
			for d := 0; d < n; d++ {
				c := costOf(p, d)
				sub := s.cum[r-1][d]
				for b := c; b <= hi; b++ {
					row[b] += sub[b-c]
				}
			}
		}
	}

	// Band counts per length: suffixes from the start state with cost in
	// (lo, hi]: cum[L][n][hi] - cum[L][n][lo].
	s.sizeByLen = make([]uint64, maxLen+1)
	for L := minLen; L <= maxLen; L++ {
		total := s.cum[L][n][hi]
		if lo >= 0 {
			total -= s.cum[L][n][lo]
		}
		s.sizeByLen[L] = total
		s.size += total
	}
	return s, nil
}

// window returns the number of length-r suffixes from state p whose cost
// lands the running total within (lo, hi], given `spent` already.
func (s *Space) window(r, p, spent int) uint64 {
	hiB := s.hi - spent
	if hiB < 0 {
		return 0
	}
	v := s.cum[r][p][hiB]
	loB := s.lo - spent
	if loB >= 0 {
		v -= s.cum[r][p][loB]
	}
	return v
}

// Size returns the number of keys in the band.
func (s *Space) Size() *big.Int { return new(big.Int).SetUint64(s.size) }

// Size64 returns the size as a uint64.
func (s *Space) Size64() uint64 { return s.size }

// AppendKey unranks identifier id into dst (f(id)).
func (s *Space) AppendKey(dst []byte, id uint64) ([]byte, error) {
	if id >= s.size {
		return dst, fmt.Errorf("markov: id %d out of range [0, %d)", id, s.size)
	}
	L := s.minLen
	for id >= s.sizeByLen[L] {
		id -= s.sizeByLen[L]
		L++
	}
	n := s.model.cs.Len()
	p := n // start state
	spent := 0
	for pos := 0; pos < L; pos++ {
		for d := 0; d < n; d++ {
			var c int
			if p == n {
				c = s.model.startCost[d]
			} else {
				c = s.model.transCost[p][d]
			}
			completions := s.window(L-pos-1, d, spent+c)
			if id < completions {
				dst = append(dst, s.model.cs.Symbol(d))
				p = d
				spent += c
				break
			}
			id -= completions
			if d == n-1 {
				return dst, errors.New("markov: internal unrank error")
			}
		}
	}
	return dst, nil
}

// Rank returns the identifier of key (the inverse of AppendKey), or an
// error if the key is not in the band.
func (s *Space) Rank(key []byte) (uint64, error) {
	L := len(key)
	if L < s.minLen || L > s.maxLen {
		return 0, fmt.Errorf("markov: key length %d outside [%d, %d]", L, s.minLen, s.maxLen)
	}
	cost, err := s.model.Cost(key)
	if err != nil {
		return 0, err
	}
	if cost <= s.lo || cost > s.hi {
		return 0, fmt.Errorf("markov: key cost %d outside band (%d, %d]", cost, s.lo, s.hi)
	}
	var id uint64
	for l := s.minLen; l < L; l++ {
		id += s.sizeByLen[l]
	}
	n := s.model.cs.Len()
	p := n
	spent := 0
	for pos := 0; pos < L; pos++ {
		want := s.model.cs.Index(key[pos])
		for d := 0; d < want; d++ {
			var c int
			if p == n {
				c = s.model.startCost[d]
			} else {
				c = s.model.transCost[p][d]
			}
			id += s.window(L-pos-1, d, spent+c)
		}
		if p == n {
			spent += s.model.startCost[want]
		} else {
			spent += s.model.transCost[p][want]
		}
		p = want
	}
	return id, nil
}

// Factory adapts the band space to core.Factory so the standard search
// engine and dispatchers drive it.
func (s *Space) Factory() core.Factory {
	return core.FuncFactory{
		New:      func() core.Enumerator { return &enum{space: s} },
		SpaceLen: s.Size(),
	}
}

type enum struct {
	space *Space
	id    uint64
	buf   []byte
}

// Seek positions the enumerator at identifier id.
func (e *enum) Seek(id *big.Int) error {
	if !id.IsUint64() {
		return fmt.Errorf("markov: id %v out of range", id)
	}
	e.id = id.Uint64()
	var err error
	e.buf, err = e.space.AppendKey(e.buf[:0], e.id)
	return err
}

// Candidate returns the current key.
func (e *enum) Candidate() []byte { return e.buf }

// Next advances to the next key of the band.
func (e *enum) Next() bool {
	if e.id+1 >= e.space.size {
		return false
	}
	e.id++
	var err error
	e.buf, err = e.space.AppendKey(e.buf[:0], e.id)
	return err == nil
}

// Bands partitions costs (0, maxCost] into k contiguous bands of equal
// width for the widen-as-you-go attack loop.
func Bands(maxCost, k int) [][2]int {
	if k <= 0 || maxCost <= 0 {
		return nil
	}
	out := make([][2]int, 0, k)
	lo := -1
	for i := 1; i <= k; i++ {
		hi := maxCost * i / k
		if hi <= lo {
			continue
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
