package markov

import (
	"context"
	"math/big"
	"testing"

	"keysearch/internal/core"
	"keysearch/internal/cracker"
	"keysearch/internal/keyspace"
)

var corpus = []string{
	"password", "dragon", "sunshine", "shadow", "master", "monkey",
	"summer", "banana", "flower", "orange", "silver", "golden",
	"hello", "lovely", "happy", "people", "little", "letter",
}

func trained(t *testing.T) *Model {
	t.Helper()
	m, err := Train(corpus, keyspace.Lower)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCostOrdering(t *testing.T) {
	m := trained(t)
	// A corpus word must cost less than charset-uniform junk of the same
	// length.
	word, err := m.Cost([]byte("dragon"))
	if err != nil {
		t.Fatal(err)
	}
	junk, err := m.Cost([]byte("qxzjwq"))
	if err != nil {
		t.Fatal(err)
	}
	if word >= junk {
		t.Errorf("cost(dragon)=%d not below cost(qxzjwq)=%d", word, junk)
	}
	if _, err := m.Cost([]byte("UPPER")); err == nil {
		t.Error("out-of-charset key accepted")
	}
	if _, err := m.Cost(nil); err == nil {
		t.Error("empty key accepted")
	}
}

// TestRankUnrankBijection: AppendKey and Rank must be exact inverses over
// the whole band, and enumeration must cover each in-band key exactly once.
func TestRankUnrankBijection(t *testing.T) {
	m := trained(t)
	s, err := NewSpace(m, 1, 3, -1, 18)
	if err != nil {
		t.Fatal(err)
	}
	size := s.Size64()
	if size == 0 {
		t.Fatal("empty band")
	}
	seen := make(map[string]bool, size)
	var buf []byte
	for id := uint64(0); id < size; id++ {
		buf, err = s.AppendKey(buf[:0], id)
		if err != nil {
			t.Fatalf("AppendKey(%d): %v", id, err)
		}
		if seen[string(buf)] {
			t.Fatalf("duplicate key %q", buf)
		}
		seen[string(buf)] = true
		back, err := s.Rank(buf)
		if err != nil {
			t.Fatalf("Rank(%q): %v", buf, err)
		}
		if back != id {
			t.Fatalf("Rank(AppendKey(%d)) = %d", id, back)
		}
		// Every enumerated key's cost must lie in the band.
		c, err := m.Cost(buf)
		if err != nil || c > 18 {
			t.Fatalf("key %q cost %d outside band", buf, c)
		}
	}
}

// TestBandsPartition: the cost bands must tile the space — every key of
// the full <=maxCost space appears in exactly one band.
func TestBandsPartition(t *testing.T) {
	m := trained(t)
	const maxCost = 16
	full, err := NewSpace(m, 1, 2, -1, maxCost)
	if err != nil {
		t.Fatal(err)
	}
	var bandTotal uint64
	seen := make(map[string]int)
	for _, b := range Bands(maxCost, 4) {
		s, err := NewSpace(m, 1, 2, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		bandTotal += s.Size64()
		var buf []byte
		for id := uint64(0); id < s.Size64(); id++ {
			buf, _ = s.AppendKey(buf[:0], id)
			seen[string(buf)]++
		}
	}
	if bandTotal != full.Size64() {
		t.Errorf("band sizes sum to %d, full space %d", bandTotal, full.Size64())
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("key %q appears in %d bands", k, n)
		}
	}
}

// TestLikelyKeysComeEarly: searching bands in cost order must reach a
// corpus-like password after testing far fewer candidates than its
// position in the plain lexicographic enumeration.
func TestLikelyKeysComeEarly(t *testing.T) {
	m := trained(t)
	target := []byte("golden") // in-corpus style, length 6
	cost, err := m.Cost(target)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates tested before reaching the target via cost bands:
	var before uint64
	for _, b := range Bands(cost+10, cost+10) { // unit-width bands
		s, err := NewSpace(m, 6, 6, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		if cost > b[0] && cost <= b[1] {
			r, err := s.Rank(target)
			if err != nil {
				t.Fatal(err)
			}
			before += r
			break
		}
		before += s.Size64()
	}
	// Plain enumeration position.
	plain, err := keyspace.New(keyspace.Lower, 6, 6, keyspace.SuffixMajor)
	if err != nil {
		t.Fatal(err)
	}
	plainID, err := plain.ID64(target)
	if err != nil {
		t.Fatal(err)
	}
	if before*10 > plainID {
		t.Errorf("markov position %d not well below lexicographic %d", before, plainID)
	}
}

// TestMarkovCrackEndToEnd cracks a likely password through the standard
// search engine over a cost band.
func TestMarkovCrackEndToEnd(t *testing.T) {
	m := trained(t)
	password := []byte("lemon")
	cost, err := m.Cost(password)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSpace(m, 5, 5, -1, cost+2)
	if err != nil {
		t.Fatal(err)
	}
	target := cracker.MD5.HashKey(password)
	factory := func() core.TestFunc {
		k, _ := cracker.NewKernel(cracker.MD5, cracker.KernelOptimized, target)
		return k.Test
	}
	res, err := core.SearchEach(context.Background(), s.Factory(),
		keyspace.Interval{Start: new(big.Int), End: s.Size()}, factory,
		core.Options{Workers: 4, MaxSolutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || string(res.Solutions[0]) != "lemon" {
		t.Errorf("solutions = %q (band size %d)", res.Solutions, s.Size64())
	}
}

func TestNewSpaceValidation(t *testing.T) {
	m := trained(t)
	if _, err := NewSpace(m, 0, 3, -1, 10); err == nil {
		t.Error("zero min length accepted")
	}
	if _, err := NewSpace(m, 1, MaxLen+1, -1, 10); err == nil {
		t.Error("over max length accepted")
	}
	if _, err := NewSpace(m, 1, 2, 5, 5); err == nil {
		t.Error("empty band accepted")
	}
	if _, err := NewSpace(m, 1, 2, -1, -1); err == nil {
		t.Error("negative hi accepted")
	}
}

func TestRankValidation(t *testing.T) {
	m := trained(t)
	s, err := NewSpace(m, 2, 3, -1, 14)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rank([]byte("a")); err == nil {
		t.Error("short key accepted")
	}
	if _, err := s.Rank([]byte("qxzj")); err == nil {
		t.Error("long key accepted")
	}
	if _, err := s.AppendKey(nil, s.Size64()); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestEnumeratorWalk(t *testing.T) {
	m := trained(t)
	s, err := NewSpace(m, 1, 2, -1, 14)
	if err != nil {
		t.Fatal(err)
	}
	e := s.Factory().NewEnumerator()
	if err := e.Seek(big.NewInt(0)); err != nil {
		t.Fatal(err)
	}
	count := uint64(1)
	prev := append([]byte(nil), e.Candidate()...)
	for e.Next() {
		count++
		if string(e.Candidate()) == string(prev) {
			t.Fatal("Next did not advance")
		}
		prev = append(prev[:0], e.Candidate()...)
	}
	if count != s.Size64() {
		t.Errorf("walked %d keys, size %d", count, s.Size64())
	}
}

func TestBandsHelper(t *testing.T) {
	bs := Bands(20, 4)
	if len(bs) != 4 || bs[0][0] != -1 || bs[3][1] != 20 {
		t.Errorf("bands = %v", bs)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i][0] != bs[i-1][1] {
			t.Errorf("bands not contiguous: %v", bs)
		}
	}
	if Bands(0, 3) != nil || Bands(10, 0) != nil {
		t.Error("degenerate bands should be nil")
	}
}
