package mining

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"math/big"
	"testing"
)

func header() Header {
	h := Header{Version: 2, Time: 1393000000, Bits: 0x1d00ffff}
	for i := range h.PrevBlock {
		h.PrevBlock[i] = byte(i)
	}
	for i := range h.MerkleRoot {
		h.MerkleRoot[i] = byte(255 - i)
	}
	return h
}

func TestMarshalLayout(t *testing.T) {
	h := header()
	h.Nonce = 0xdeadbeef
	buf := h.Marshal()
	if binary.LittleEndian.Uint32(buf[0:]) != 2 {
		t.Error("version")
	}
	if buf[4] != 0 || buf[5] != 1 {
		t.Error("prev block")
	}
	if binary.LittleEndian.Uint32(buf[76:]) != 0xdeadbeef {
		t.Error("nonce")
	}
}

func TestPoWMatchesStdlib(t *testing.T) {
	h := header()
	h.Nonce = 12345
	buf := h.Marshal()
	first := sha256.Sum256(buf[:])
	want := sha256.Sum256(first[:])
	if h.PoW() != want {
		t.Error("PoW mismatch vs crypto/sha256")
	}
}

func TestMineFindsNonce(t *testing.T) {
	h := header()
	// Difficulty 12 bits: expected ~4096 attempts.
	nonce, ok, err := Mine(context.Background(), h, 12, 0, 1<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no nonce found in 2^20 range at 12 bits")
	}
	h.Nonce = nonce
	if !h.MeetsDifficulty(12) {
		t.Errorf("winning nonce %d does not meet difficulty", nonce)
	}
}

func TestMineExhaustsWithoutSolution(t *testing.T) {
	h := header()
	// 60 leading zero bits in a 2^12 range: essentially impossible.
	_, ok, err := Mine(context.Background(), h, 60, 0, 1<<12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("found a 60-bit nonce in 4096 tries — check the difficulty test")
	}
}

func TestMineValidation(t *testing.T) {
	h := header()
	if _, _, err := Mine(context.Background(), h, -1, 0, 10, 1); err == nil {
		t.Error("negative difficulty accepted")
	}
	if _, _, err := Mine(context.Background(), h, 10, 0, 1<<33, 1); err == nil {
		t.Error("oversized nonce range accepted")
	}
}

func TestNonceEnum(t *testing.T) {
	e := &nonceEnum{tmpl: header()}
	if err := e.Seek(big.NewInt(100)); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(e.Candidate()[76:]); got != 100 {
		t.Errorf("nonce = %d", got)
	}
	if !e.Next() {
		t.Fatal("Next failed")
	}
	if got := binary.LittleEndian.Uint32(e.Candidate()[76:]); got != 101 {
		t.Errorf("nonce after next = %d", got)
	}
	if err := e.Seek(new(big.Int).Lsh(big.NewInt(1), 33)); err == nil {
		t.Error("oversized seek accepted")
	}
	// Exhaustion at the top of the nonce space.
	if err := e.Seek(new(big.Int).SetUint64(1<<32 - 1)); err != nil {
		t.Fatal(err)
	}
	if e.Next() {
		t.Error("Next past the last nonce")
	}
}

// TestPoolSharesProportionalToHashrate: miners' share counts (and hence
// rewards) track their assigned slice of the nonce space.
func TestPoolSharesProportionalToHashrate(t *testing.T) {
	pool := &Pool{Template: header(), Difficulty: 18, ShareDifficulty: 7}
	miners := []*Miner{
		{Name: "big", Hashrate: 3},
		{Name: "small", Hashrate: 1},
	}
	res, err := pool.Run(context.Background(), miners, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("pool did not solve an 18-bit block over the full nonce space")
	}
	// Verify the winning nonce.
	h := pool.Template
	h.Nonce = res.WinningNonce
	if !h.MeetsDifficulty(pool.Difficulty) {
		t.Error("winning nonce invalid")
	}
	if res.TotalShares == 0 {
		t.Fatal("no shares recorded")
	}
	var sum float64
	for _, r := range res.Rewards {
		sum += r
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("rewards sum to %v", sum)
	}
	// With a 3:1 split of the space, shares before the solve lean toward
	// the bigger miner. The solve can land early, so only require the big
	// miner to be credited more than a token amount when shares are many.
	if res.TotalShares > 50 && res.Rewards["big"] < 0.4 {
		t.Errorf("big miner reward %.2f of %d shares; expected the lion's share",
			res.Rewards["big"], res.TotalShares)
	}
}

func TestPoolValidation(t *testing.T) {
	pool := &Pool{Template: header(), Difficulty: 8, ShareDifficulty: 10}
	if _, err := pool.Run(context.Background(), []*Miner{{Name: "m", Hashrate: 1}}, 1); err == nil {
		t.Error("share difficulty above block difficulty accepted")
	}
	pool.ShareDifficulty = 4
	if _, err := pool.Run(context.Background(), nil, 1); err == nil {
		t.Error("no miners accepted")
	}
	if _, err := pool.Run(context.Background(), []*Miner{{Name: "m"}}, 1); err == nil {
		t.Error("zero hashrate accepted")
	}
}
