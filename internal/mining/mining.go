// Package mining implements the second exhaustive-search application the
// paper's introduction motivates: Bitcoin-style proof of work, "an
// exhaustive search ... to find a 32-bit value (nonce) that is used as
// input to a hashing function based on the SHA256 algorithm, producing a
// hash with a certain number of leading zero bits".
//
// The nonce search is expressed through the same pattern as password
// cracking — f(i) stamps the nonce into the header (the cheap next
// operator is a 4-byte overwrite), C counts leading zero bits — and the
// pool splits the nonce space and shares rewards "on the basis of the
// computing power contribution", exactly as the paper describes mining
// pools.
package mining

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"keysearch/internal/core"
	"keysearch/internal/hash/sha256x"
	"keysearch/internal/keyspace"
)

// HeaderSize is the serialized block-header size (the Bitcoin layout:
// version, previous hash, merkle root, time, bits, nonce).
const HeaderSize = 80

// Header is a block header template; the nonce field is the search space.
type Header struct {
	Version    uint32
	PrevBlock  [32]byte
	MerkleRoot [32]byte
	Time       uint32
	Bits       uint32
	Nonce      uint32
}

// Marshal serializes the header into the 80-byte wire layout.
func (h *Header) Marshal() [HeaderSize]byte {
	var out [HeaderSize]byte
	binary.LittleEndian.PutUint32(out[0:], h.Version)
	copy(out[4:], h.PrevBlock[:])
	copy(out[36:], h.MerkleRoot[:])
	binary.LittleEndian.PutUint32(out[68:], h.Time)
	binary.LittleEndian.PutUint32(out[72:], h.Bits)
	binary.LittleEndian.PutUint32(out[76:], h.Nonce)
	return out
}

// PoW returns the proof-of-work hash: double SHA-256 of the header.
func (h *Header) PoW() [32]byte {
	buf := h.Marshal()
	return sha256x.DoubleSum(buf[:])
}

// MeetsDifficulty reports whether the header's hash has at least bits
// leading zero bits.
func (h *Header) MeetsDifficulty(bits int) bool {
	return sha256x.LeadingZeroBits(h.PoW()) >= bits
}

// Mine searches the nonce interval [from, to) for a nonce meeting the
// difficulty, using the core search engine over the nonce identifier
// space. It returns the first nonce found.
func Mine(ctx context.Context, tmpl Header, difficulty int, from, to uint64, workers int) (uint32, bool, error) {
	if difficulty < 0 || difficulty > 256 {
		return 0, false, fmt.Errorf("mining: difficulty %d out of range", difficulty)
	}
	if to > 1<<32 {
		return 0, false, errors.New("mining: nonce range exceeds 32 bits")
	}
	factory := core.FuncFactory{
		New:      func() core.Enumerator { return &nonceEnum{tmpl: tmpl} },
		SpaceLen: new(big.Int).Lsh(big.NewInt(1), 32),
	}
	test := func() core.TestFunc {
		return func(candidate []byte) bool {
			sum := sha256x.DoubleSum(candidate)
			return sha256x.LeadingZeroBits(sum) >= difficulty
		}
	}
	iv := keyspace.Interval{
		Start: new(big.Int).SetUint64(from),
		End:   new(big.Int).SetUint64(to),
	}
	res, err := core.SearchEach(ctx, factory, iv, test, core.Options{
		Workers: workers, ChunkSize: 4096, MaxSolutions: 1,
	})
	if err != nil {
		return 0, false, err
	}
	if len(res.Solutions) == 0 {
		return 0, false, nil
	}
	nonce := binary.LittleEndian.Uint32(res.Solutions[0][76:])
	return nonce, true, nil
}

// nonceEnum enumerates headers by nonce: f(i) writes the nonce into the
// serialized header; next is a single 4-byte overwrite — an extreme case
// of the paper's K_next << K_f observation.
type nonceEnum struct {
	tmpl  Header
	buf   [HeaderSize]byte
	nonce uint64
	init  bool
}

// Seek positions the enumerator at the given nonce.
func (e *nonceEnum) Seek(id *big.Int) error {
	if !id.IsUint64() || id.Uint64() >= 1<<32 {
		return fmt.Errorf("mining: nonce %v out of range", id)
	}
	if !e.init {
		e.buf = e.tmpl.Marshal()
		e.init = true
	}
	e.nonce = id.Uint64()
	binary.LittleEndian.PutUint32(e.buf[76:], uint32(e.nonce))
	return nil
}

// Candidate returns the serialized header with the current nonce.
func (e *nonceEnum) Candidate() []byte { return e.buf[:] }

// Next advances the nonce.
func (e *nonceEnum) Next() bool {
	if e.nonce+1 >= 1<<32 {
		return false
	}
	e.nonce++
	binary.LittleEndian.PutUint32(e.buf[76:], uint32(e.nonce))
	return true
}

// Miner is one pool participant.
type Miner struct {
	Name string
	// Hashrate is the miner's relative computing power; the pool sizes
	// nonce shares proportionally (the paper: rewards shared "on the
	// basis of the computing power contribution").
	Hashrate float64
	// Goroutines is the miner's actual local parallelism (0 = the pool
	// run's default). Demos set it proportional to Hashrate so declared
	// and actual power agree.
	Goroutines int
	// Shares counts lower-difficulty proofs submitted (the pool's
	// contribution metric).
	Shares int
}

// Pool coordinates miners over one block template.
type Pool struct {
	Template Header
	// Difficulty is the network target in leading zero bits.
	Difficulty int
	// ShareDifficulty is the easier per-share target the pool credits.
	ShareDifficulty int
}

// PoolResult reports a pool round.
type PoolResult struct {
	// WinningNonce solves the block (valid only if Solved).
	WinningNonce uint32
	Solved       bool
	// Rewards maps miner name to its fraction of the block reward,
	// proportional to submitted shares.
	Rewards map[string]float64
	// TotalShares across miners.
	TotalShares int
}

// Run mines the full 32-bit nonce space split across the miners
// proportionally to hashrate (each miner runs workers goroutines), counts
// shares at the pool's share difficulty, and splits the reward by shares.
func (p *Pool) Run(ctx context.Context, miners []*Miner, workers int) (*PoolResult, error) {
	if len(miners) == 0 {
		return nil, errors.New("mining: no miners")
	}
	if p.ShareDifficulty > p.Difficulty {
		return nil, errors.New("mining: share difficulty above block difficulty")
	}
	weights := make([]float64, len(miners))
	for i, m := range miners {
		if m.Hashrate <= 0 {
			return nil, fmt.Errorf("mining: miner %s has no hashrate", m.Name)
		}
		weights[i] = m.Hashrate
	}
	whole := keyspace.Interval{Start: new(big.Int), End: new(big.Int).Lsh(big.NewInt(1), 32)}
	parts, err := whole.SplitWeighted(weights)
	if err != nil {
		return nil, err
	}

	res := &PoolResult{Rewards: make(map[string]float64)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	for i, m := range miners {
		wg.Add(1)
		go func(m *Miner, iv keyspace.Interval) {
			defer wg.Done()
			factory := core.FuncFactory{
				New:      func() core.Enumerator { return &nonceEnum{tmpl: p.Template} },
				SpaceLen: new(big.Int).Lsh(big.NewInt(1), 32),
			}
			test := func() core.TestFunc {
				return func(candidate []byte) bool {
					sum := sha256x.DoubleSum(candidate)
					zeros := sha256x.LeadingZeroBits(sum)
					if zeros >= p.ShareDifficulty {
						mu.Lock()
						m.Shares++
						res.TotalShares++
						if zeros >= p.Difficulty && !res.Solved {
							res.Solved = true
							res.WinningNonce = binary.LittleEndian.Uint32(candidate[76:])
							cancel()
						}
						mu.Unlock()
					}
					return false // never stop via solutions; cancel() stops us
				}
			}
			g := m.Goroutines
			if g == 0 {
				g = workers
			}
			_, _ = core.SearchEach(ctx, factory, iv, test, core.Options{Workers: g, ChunkSize: 4096})
		}(m, parts[i])
	}
	wg.Wait()

	if res.TotalShares > 0 {
		for _, m := range miners {
			res.Rewards[m.Name] = float64(m.Shares) / float64(res.TotalShares)
		}
	}
	return res, nil
}
