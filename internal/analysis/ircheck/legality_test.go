package ircheck

import (
	"testing"

	"keysearch/internal/arch"
	"keysearch/internal/kernel"
)

// TestArchLegalityTable pins the per-architecture instruction gating to
// the paper's Tables III–VI: the MAD-lowered rotate (SHL+IMAD.HI) appears
// from cc2.0 on (Table IV/V), PRMT exists from cc2.x (and the paper
// applies it on cc3.0, Table VI), and the funnel shift is the cc3.5
// extension of Section V. Plain shifts and additions are legal everywhere
// (Table II lists their throughput on every family).
func TestArchLegalityTable(t *testing.T) {
	instr := func(op kernel.Op, b kernel.Operand, sh uint8) kernel.Instr {
		return kernel.Instr{Op: op, Dst: 2, A: kernel.R(0), B: b, Sh: sh}
	}
	imm0 := kernel.Imm(0)

	cases := []struct {
		name    string
		in      kernel.Instr
		legalOn map[arch.CC]bool
	}{
		{
			name: "add",
			in:   instr(kernel.OpAdd, kernel.R(1), 0),
			legalOn: map[arch.CC]bool{
				arch.CC1x: true, arch.CC20: true, arch.CC21: true, arch.CC30: true, arch.CC35: true,
			},
		},
		{
			name: "shl",
			in:   instr(kernel.OpShl, imm0, 7),
			legalOn: map[arch.CC]bool{
				arch.CC1x: true, arch.CC20: true, arch.CC21: true, arch.CC30: true, arch.CC35: true,
			},
		},
		{
			name: "imad-hi",
			in:   instr(kernel.OpIMADHi, kernel.R(1), 7),
			legalOn: map[arch.CC]bool{
				arch.CC1x: false, arch.CC20: true, arch.CC21: true, arch.CC30: true, arch.CC35: true,
			},
		},
		{
			name: "iscadd",
			in:   instr(kernel.OpISCADD, kernel.R(1), 2),
			legalOn: map[arch.CC]bool{
				arch.CC1x: false, arch.CC20: true, arch.CC21: true, arch.CC30: true, arch.CC35: true,
			},
		},
		{
			name: "prmt",
			in:   instr(kernel.OpPerm, imm0, 16),
			legalOn: map[arch.CC]bool{
				arch.CC1x: false, arch.CC20: true, arch.CC21: true, arch.CC30: true, arch.CC35: true,
			},
		},
		{
			name: "funnel",
			in:   instr(kernel.OpFunnel, imm0, 5),
			legalOn: map[arch.CC]bool{
				arch.CC1x: false, arch.CC20: false, arch.CC21: false, arch.CC30: false, arch.CC35: true,
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if len(tc.legalOn) != len(arch.All) {
				t.Fatalf("case covers %d of %d architectures", len(tc.legalOn), len(arch.All))
			}
			for _, cc := range arch.All {
				p := prog([]kernel.Instr{tc.in}, 3, 2)
				vs := Check(p, Machine(cc))
				var gate *Violation
				for i := range vs {
					if vs[i].Rule == RuleArch {
						gate = &vs[i]
						break
					}
				}
				if tc.legalOn[cc] && gate != nil {
					t.Errorf("cc %v: %s should be legal, got %v", cc, tc.name, *gate)
				}
				if !tc.legalOn[cc] && gate == nil {
					t.Errorf("cc %v: %s should be rejected, got %v", cc, tc.name, vs)
				}
			}
		})
	}
}

// TestLegalityAgreesWithArchHelpers cross-checks the gate against the
// arch package's capability helpers so the two encodings of Tables III–VI
// cannot drift apart.
func TestLegalityAgreesWithArchHelpers(t *testing.T) {
	for _, cc := range arch.All {
		checks := []struct {
			in   kernel.Instr
			want bool
		}{
			{kernel.Instr{Op: kernel.OpIMADHi, Dst: 2, A: kernel.R(0), B: kernel.R(1), Sh: 7}, cc.HasIMAD()},
			{kernel.Instr{Op: kernel.OpFunnel, Dst: 2, A: kernel.R(0), B: kernel.Imm(0), Sh: 7}, cc.HasFunnelShift()},
		}
		for _, chk := range checks {
			p := prog([]kernel.Instr{chk.in}, 3, 2)
			legal := true
			for _, v := range Check(p, Machine(cc)) {
				if v.Rule == RuleArch {
					legal = false
				}
			}
			if legal != chk.want {
				t.Errorf("cc %v: %v legal=%v, arch helper says %v", cc, chk.in.Op, legal, chk.want)
			}
		}
	}
}
