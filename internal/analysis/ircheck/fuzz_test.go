package ircheck_test

import (
	"testing"

	"keysearch/internal/analysis/ircheck"
	"keysearch/internal/arch"
	"keysearch/internal/compile"
	"keysearch/internal/gpu"
	"keysearch/internal/kernel"
)

// genProgram decodes fuzz bytes into a well-formed, exit-free source
// program: every instruction reads only defined registers and writes a
// fresh one, shift amounts stay in range, outputs name defined registers.
// Exit-free keeps every lane alive, which is what makes the static class
// counts provably equal to the dynamic trace.
func genProgram(data []byte) *kernel.Program {
	if len(data) < 4 {
		return nil
	}
	numInputs := 2 + int(data[0]%3)
	b := kernel.NewBuilder("fuzz", numInputs)
	vals := make([]kernel.Val, 0, 64)
	for i := 0; i < numInputs; i++ {
		vals = append(vals, b.Input(i))
	}

	pick := func(sel byte) kernel.Val {
		if sel >= 0xe0 { // sprinkle immediates
			return b.Const(0x01000193 * uint32(sel))
		}
		return vals[int(sel)%len(vals)]
	}

	data = data[1:]
	emitted := 0
	for len(data) >= 3 && emitted < 48 {
		op, aSel, shSel := data[0], data[1], data[2]
		var bSel byte
		if len(data) >= 4 {
			bSel = data[3]
		}
		x := pick(aSel)
		sh := uint8(shSel%31) + 1
		var v kernel.Val
		switch op % 8 {
		case 0:
			v = b.Add(x, pick(bSel))
		case 1:
			v = b.And(x, pick(bSel))
		case 2:
			v = b.Or(x, pick(bSel))
		case 3:
			v = b.Xor(x, pick(bSel))
		case 4:
			v = b.Not(x)
		case 5:
			v = b.Shl(x, sh)
		case 6:
			v = b.Shr(x, sh)
		default:
			v = b.Rotl(x, sh)
		}
		vals = append(vals, v)
		if len(data) < 4 {
			data = nil
		} else {
			data = data[4:]
		}
		emitted++
	}
	if emitted == 0 {
		return nil
	}
	// Outputs: the last two values (registers or materialized constants).
	b.Output(vals[len(vals)-1])
	if len(vals) > 1 {
		b.Output(vals[len(vals)-2])
	}
	return b.Build()
}

// FuzzVerifiedPrograms is the satellite fuzz target: generator-produced
// programs must pass the source verifier; the checked compile pipeline
// must accept them on every architecture; the compiled programs must
// neither panic the scalar executor nor the warp interpreter; and the
// static per-class counts must equal the dynamic trace exactly.
func FuzzVerifiedPrograms(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x01, 0x05, 0x02, 0x03, 0x02, 0x11, 0xff})
	f.Add([]byte{0x02, 0x07, 0x00, 0x0c, 0x01, 0x05, 0x01, 0x09, 0x03, 0x04, 0x02, 0x1f, 0xe2})
	f.Add([]byte{0x00, 0x04, 0x01, 0x08, 0x00, 0x06, 0x02, 0x10, 0x20, 0x05, 0x03, 0x18, 0x00,
		0x07, 0x02, 0x07, 0x00, 0x03, 0x01, 0x16, 0xee})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44})

	f.Fuzz(func(t *testing.T, data []byte) {
		src := genProgram(data)
		if src == nil {
			t.Skip()
		}
		if err := ircheck.Verify(src, ircheck.Source()); err != nil {
			t.Fatalf("generator emitted ill-formed program: %v", err)
		}

		inputs := make([]uint32, src.NumInputs)
		for i := range inputs {
			inputs[i] = 0x9e3779b9*uint32(i) + 0x243f6a88
		}
		wantOut, _, err := kernel.Run(src, inputs)
		if err != nil {
			t.Fatalf("source run: %v", err)
		}

		interp := gpu.NewWarpInterp()
		for _, cc := range arch.All {
			c, err := compile.CompileChecked(src, compile.DefaultOptions(cc))
			if err != nil {
				t.Fatalf("cc %v: %v", cc, err)
			}

			// The compiled program agrees with the source semantics.
			gotOut, _, err := kernel.Run(c.Program, inputs)
			if err != nil {
				t.Fatalf("cc %v: compiled run: %v", cc, err)
			}
			for i := range wantOut {
				if gotOut[i] != wantOut[i] {
					t.Fatalf("cc %v: output %d = %#x, source %#x", cc, i, gotOut[i], wantOut[i])
				}
			}

			// Static class counts equal the warp interpreter's dynamic
			// trace: the program is exit-free, so every lane survives and
			// every instruction issues exactly once.
			warpIn := make([][arch.WarpSize]uint32, c.Program.NumInputs)
			for i := range warpIn {
				for lane := 0; lane < arch.WarpSize; lane++ {
					warpIn[i][lane] = inputs[i] + uint32(lane)*0x85ebca6b
				}
			}
			res, err := interp.Run(c.Program, warpIn, gpu.FullMask)
			if err != nil {
				t.Fatalf("cc %v: warp run: %v", cc, err)
			}
			static := c.Program.CountClasses()
			for _, class := range []kernel.Class{
				kernel.ClassAdd, kernel.ClassLogic, kernel.ClassShift,
				kernel.ClassMAD, kernel.ClassPerm, kernel.ClassControl,
			} {
				if static[class] != res.ExecutedByClass[class] {
					t.Fatalf("cc %v: class %v static %d != dynamic %d",
						cc, class, static[class], res.ExecutedByClass[class])
				}
			}
		}
	})
}
