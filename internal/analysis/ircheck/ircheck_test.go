package ircheck

import (
	"strings"
	"testing"

	"keysearch/internal/arch"
	"keysearch/internal/kernel"
)

// prog builds a 2-input program around the given instructions.
func prog(instrs []kernel.Instr, numRegs int, outputs ...int) *kernel.Program {
	return &kernel.Program{
		Name: "t", NumInputs: 2, NumRegs: numRegs, Instrs: instrs, Outputs: outputs,
	}
}

func wantRule(t *testing.T, vs []Violation, rule Rule) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("violations %v missing rule %q", vs, rule)
}

func wantClean(t *testing.T, p *kernel.Program, opt Options) {
	t.Helper()
	if err := Verify(p, opt); err != nil {
		t.Fatalf("expected clean program: %v", err)
	}
}

func TestWellFormedAccepted(t *testing.T) {
	p := prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(0), B: kernel.R(1)},
		{Op: kernel.OpXor, Dst: 3, A: kernel.R(2), B: kernel.Imm(0x5a5a5a5a)},
		{Op: kernel.OpExitNE, Dst: -1, A: kernel.R(3), B: kernel.Imm(7)},
	}, 4, 3)
	wantClean(t, p, Source())
	wantClean(t, p, Machine(arch.CC1x))
}

func TestUseBeforeDef(t *testing.T) {
	p := prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(3), B: kernel.R(1)}, // r3 defined later
		{Op: kernel.OpXor, Dst: 3, A: kernel.R(0), B: kernel.R(1)},
	}, 4, 2, 3)
	wantRule(t, Check(p, Source()), RuleUseUndef)
}

func TestSingleAssignment(t *testing.T) {
	p := prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(0), B: kernel.R(1)},
		{Op: kernel.OpXor, Dst: 2, A: kernel.R(0), B: kernel.R(1)},
	}, 3, 2)
	wantRule(t, Check(p, Source()), RuleRedefine)
}

func TestWriteToInput(t *testing.T) {
	p := prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 1, A: kernel.R(0), B: kernel.Imm(1)},
	}, 3, 1)
	wantRule(t, Check(p, Source()), RuleWriteInput)
}

func TestDestinationBounds(t *testing.T) {
	p := prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 7, A: kernel.R(0), B: kernel.R(1)},
	}, 3)
	wantRule(t, Check(p, Source()), RuleDstBounds)
}

func TestOperandBounds(t *testing.T) {
	p := prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(9), B: kernel.R(1)},
	}, 3, 2)
	wantRule(t, Check(p, Source()), RuleOperand)
}

func TestShiftRanges(t *testing.T) {
	cases := []struct {
		name string
		in   kernel.Instr
	}{
		{"shl-32", kernel.Instr{Op: kernel.OpShl, Dst: 2, A: kernel.R(0), B: kernel.Imm(0), Sh: 32}},
		{"rotl-0", kernel.Instr{Op: kernel.OpRotl, Dst: 2, A: kernel.R(0), B: kernel.Imm(0), Sh: 0}},
		{"funnel-40", kernel.Instr{Op: kernel.OpFunnel, Dst: 2, A: kernel.R(0), B: kernel.Imm(0), Sh: 40}},
		{"imad-0", kernel.Instr{Op: kernel.OpIMADHi, Dst: 2, A: kernel.R(0), B: kernel.R(1), Sh: 0}},
		{"prmt-12", kernel.Instr{Op: kernel.OpPerm, Dst: 2, A: kernel.R(0), B: kernel.Imm(0), Sh: 12}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := prog([]kernel.Instr{tc.in}, 3, 2)
			wantRule(t, Check(p, Source()), RuleShiftRange)
		})
	}
}

func TestSpuriousFields(t *testing.T) {
	// ADD carrying a shift amount.
	p := prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(0), B: kernel.R(1), Sh: 3},
	}, 3, 2)
	wantRule(t, Check(p, Source()), RuleSpuriousSh)

	// Unary SHL with a live (zero-value) register B operand — the exact
	// shape a careless lowering emits.
	p = prog([]kernel.Instr{
		{Op: kernel.OpShl, Dst: 2, A: kernel.R(0), Sh: 3}, // B zero value = R(0)
	}, 3, 2)
	wantRule(t, Check(p, Source()), RuleSpuriousB)
}

func TestExitShape(t *testing.T) {
	p := prog([]kernel.Instr{
		{Op: kernel.OpExitNE, Dst: 2, A: kernel.R(0), B: kernel.R(1)},
	}, 3)
	wantRule(t, Check(p, Source()), RuleExitShape)
}

func TestUndefinedOutput(t *testing.T) {
	p := prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(0), B: kernel.R(1)},
	}, 4, 3) // r3 never defined
	wantRule(t, Check(p, Source()), RuleOutputUndef)
}

func TestPseudoGate(t *testing.T) {
	p := prog([]kernel.Instr{
		{Op: kernel.OpRotl, Dst: 2, A: kernel.R(0), B: kernel.Imm(0), Sh: 7},
	}, 3, 2)
	wantClean(t, p, Source())
	wantRule(t, Check(p, Machine(arch.CC30)), RulePseudo)
}

func TestTidyGates(t *testing.T) {
	// Nop survives.
	p := prog([]kernel.Instr{
		{Op: kernel.OpNop},
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(0), B: kernel.R(1)},
	}, 3, 2)
	wantClean(t, p, MidPass())
	wantRule(t, Check(p, Machine(arch.CC1x)), RuleNop)

	// Dead instruction survives.
	p = prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(0), B: kernel.R(1)},
		{Op: kernel.OpXor, Dst: 3, A: kernel.R(0), B: kernel.R(1)}, // unobserved
	}, 4, 2)
	wantClean(t, p, MidPass())
	wantRule(t, Check(p, Machine(arch.CC1x)), RuleDead)
}

func TestMovLegalOnMachinePrograms(t *testing.T) {
	// A constant output keeps its materializing MOV; that is legal
	// machine state (MOV32I), not a tidiness violation.
	p := prog([]kernel.Instr{
		{Op: kernel.OpMov, Dst: 2, A: kernel.Imm(42), B: kernel.Imm(0)},
	}, 3, 2)
	wantClean(t, p, Machine(arch.CC30))
}

func TestDead(t *testing.T) {
	p := prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(0), B: kernel.R(1)},  // live: feeds r4
		{Op: kernel.OpXor, Dst: 3, A: kernel.R(0), B: kernel.R(1)},  // dead
		{Op: kernel.OpAnd, Dst: 4, A: kernel.R(2), B: kernel.Imm(1)}, // live: output
	}, 5, 4)
	dead := Dead(p)
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("Dead = %v, want [1]", dead)
	}

	// Transitively dead chains are fully reported.
	p = prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(0), B: kernel.R(1)}, // feeds only dead r3
		{Op: kernel.OpXor, Dst: 3, A: kernel.R(2), B: kernel.R(1)}, // dead
		{Op: kernel.OpAnd, Dst: 4, A: kernel.R(0), B: kernel.Imm(1)},
	}, 5, 4)
	dead = Dead(p)
	if len(dead) != 2 || dead[0] != 0 || dead[1] != 1 {
		t.Fatalf("Dead = %v, want [0 1]", dead)
	}
}

func TestVerifyErrorNamesEveryViolation(t *testing.T) {
	p := prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(9), B: kernel.R(1)},
		{Op: kernel.OpXor, Dst: 2, A: kernel.R(0), B: kernel.R(1)},
	}, 3, 2)
	err := Verify(p, Source())
	if err == nil {
		t.Fatal("expected error")
	}
	for _, want := range []string{string(RuleOperand), string(RuleRedefine)} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing rule %q", err, want)
		}
	}
}

func TestAnalyzeSerialChain(t *testing.T) {
	// r2 = r0+r1; r3 = r2^1; r4 = r3+2 — a pure chain.
	p := prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(0), B: kernel.R(1)},
		{Op: kernel.OpXor, Dst: 3, A: kernel.R(2), B: kernel.Imm(1)},
		{Op: kernel.OpAdd, Dst: 4, A: kernel.R(3), B: kernel.Imm(2)},
	}, 5, 4)
	df := Analyze(p)
	if df.Instructions != 3 || df.CriticalPath != 3 {
		t.Fatalf("Instructions=%d CriticalPath=%d, want 3/3", df.Instructions, df.CriticalPath)
	}
	if df.ILP != 1 || df.Pairs != 0 || df.DualIssue != 0 {
		t.Fatalf("ILP=%v Pairs=%d DualIssue=%v, want 1/0/0", df.ILP, df.Pairs, df.DualIssue)
	}
}

func TestAnalyzeIndependentStreams(t *testing.T) {
	// Two interleaved independent chains: every instruction pairs.
	p := &kernel.Program{
		Name: "t2", NumInputs: 4, NumRegs: 8,
		Instrs: []kernel.Instr{
			{Op: kernel.OpAdd, Dst: 4, A: kernel.R(0), B: kernel.R(1)},
			{Op: kernel.OpAdd, Dst: 5, A: kernel.R(2), B: kernel.R(3)},
			{Op: kernel.OpXor, Dst: 6, A: kernel.R(4), B: kernel.Imm(1)},
			{Op: kernel.OpXor, Dst: 7, A: kernel.R(5), B: kernel.Imm(1)},
		},
		Outputs: []int{6, 7},
	}
	df := Analyze(p)
	if df.Instructions != 4 || df.CriticalPath != 2 {
		t.Fatalf("Instructions=%d CriticalPath=%d, want 4/2", df.Instructions, df.CriticalPath)
	}
	if df.ILP != 2 {
		t.Fatalf("ILP=%v, want 2", df.ILP)
	}
	if df.Pairs != 2 || df.DualIssue != 1 {
		t.Fatalf("Pairs=%d DualIssue=%v, want 2/1", df.Pairs, df.DualIssue)
	}
}

func TestAnalyzePairsAreDisjoint(t *testing.T) {
	// Three mutually independent instructions: the middle one pairs with
	// the first, so the third has no partner left — one pair, not two.
	p := &kernel.Program{
		Name: "t3", NumInputs: 3, NumRegs: 6,
		Instrs: []kernel.Instr{
			{Op: kernel.OpAdd, Dst: 3, A: kernel.R(0), B: kernel.Imm(1)},
			{Op: kernel.OpAdd, Dst: 4, A: kernel.R(1), B: kernel.Imm(1)},
			{Op: kernel.OpAdd, Dst: 5, A: kernel.R(2), B: kernel.Imm(1)},
		},
		Outputs: []int{3, 4, 5},
	}
	df := Analyze(p)
	if df.Pairs != 1 {
		t.Fatalf("Pairs=%d, want 1 (greedy disjoint pairing)", df.Pairs)
	}
}

func TestAnalyzeMovTransparent(t *testing.T) {
	// A MOV between chain links neither costs an issue slot nor breaks
	// the dependency chain.
	p := prog([]kernel.Instr{
		{Op: kernel.OpAdd, Dst: 2, A: kernel.R(0), B: kernel.R(1)},
		{Op: kernel.OpMov, Dst: 3, A: kernel.R(2), B: kernel.Imm(0)},
		{Op: kernel.OpAdd, Dst: 4, A: kernel.R(3), B: kernel.Imm(1)},
	}, 5, 4)
	df := Analyze(p)
	if df.Instructions != 2 || df.CriticalPath != 2 {
		t.Fatalf("Instructions=%d CriticalPath=%d, want 2/2", df.Instructions, df.CriticalPath)
	}
	if df.Pairs != 0 {
		t.Fatalf("Pairs=%d, want 0 (copy is transparent, chain dependency remains)", df.Pairs)
	}
}

func TestMalformedShapeBailsOut(t *testing.T) {
	p := &kernel.Program{Name: "bad", NumInputs: 4, NumRegs: 2}
	wantRule(t, Check(p, Source()), RuleShape)
}
