package ircheck

import "keysearch/internal/kernel"

// Dataflow is the dependency-chain summary of a program: how many issue
// slots it costs, how long its critical path is, and how much static
// instruction-level parallelism an in-order dual-issue scheduler could
// extract. The Section VI model's δ (dual-issue fraction) and ILP bound
// are derived from these numbers instead of hand-set.
type Dataflow struct {
	// Instructions counts issue slots: every instruction except NOP
	// placeholders and MOV copies (erased by copy propagation; a surviving
	// constant-materializing MOV is overlapped with the constant bank and
	// costs nothing in the paper's accounting). Exit checks are counted —
	// they occupy an issue slot even though they retire in the branch unit.
	Instructions int
	// CriticalPath is the longest register-dependency chain, in
	// instructions. A program whose every instruction consumes its
	// predecessor's result has CriticalPath == Instructions.
	CriticalPath int
	// ILP is Instructions/CriticalPath — the average width of the
	// dependency DAG, an upper bound on sustained instructions per cycle
	// per warp. 1.0 means a fully serial chain.
	ILP float64
	// Pairs counts disjoint in-order dual-issue pairs under the
	// scheduler's rule (the second instruction must not read the first's
	// result), scanned greedily like the cycle simulator issues.
	Pairs int
	// DualIssue is the derived δ: the fraction of instructions that issue
	// as part of a pair, 2·Pairs/Instructions. The paper measured this
	// with the CUDA profiler ("less than 10%" for the single-stream
	// kernels); here it is a static fact of the dependency structure.
	DualIssue float64
}

// Analyze computes the dependency-chain dataflow of p. It accepts both
// source-level programs (pseudo rotations count as one issued
// instruction) and machine programs; for machine programs the pairing
// scan mirrors the cycle simulator's dual-issue rule exactly.
func Analyze(p *kernel.Program) Dataflow {
	// depthOf[r] is the dependency depth of the instruction chain that
	// produced register r; inputs have depth 0. MOV copies are
	// transparent: they forward their source's depth.
	depthOf := make([]int, p.NumRegs)
	// defOf[r] is the issued-instruction serial that defined r, or -1
	// for inputs (and registers defined by transparent copies, which
	// forward their source's serial).
	defOf := make([]int, p.NumRegs)
	for i := range defOf {
		defOf[i] = -1
	}

	var df Dataflow
	prevSerial := -1 // issued serial of the previous instruction
	prevPaired := false

	operand := func(o kernel.Operand) (depth, def int) {
		if o.IsImm || o.Reg < 0 || o.Reg >= p.NumRegs {
			return 0, -1
		}
		return depthOf[o.Reg], defOf[o.Reg]
	}

	for _, in := range p.Instrs {
		switch in.Op {
		case kernel.OpNop:
			continue
		case kernel.OpMov:
			// Transparent copy: the destination aliases its source's
			// depth and defining instruction, so a chain routed through a
			// copy is still one chain.
			if in.Dst >= 0 && in.Dst < p.NumRegs {
				d, s := operand(in.A)
				depthOf[in.Dst] = d
				defOf[in.Dst] = s
			}
			continue
		}

		serial := df.Instructions
		df.Instructions++

		da, sa := operand(in.A)
		db, sb := operand(in.B)
		depth := 1 + max(da, db)
		if depth > df.CriticalPath {
			df.CriticalPath = depth
		}

		// Dual-issue pairing, greedy and disjoint: this instruction pairs
		// with its immediate predecessor iff the predecessor is not
		// already the second of a pair and neither operand was defined by
		// the predecessor — the cycle simulator's exact rule, expressed
		// on defining-instruction serials (so copies stay transparent).
		if prevSerial >= 0 && !prevPaired && sa != prevSerial && sb != prevSerial {
			df.Pairs++
			prevPaired = true
		} else {
			prevPaired = false
		}
		prevSerial = serial

		if in.Op != kernel.OpExitNE && in.Dst >= 0 && in.Dst < p.NumRegs {
			depthOf[in.Dst] = depth
			defOf[in.Dst] = serial
		}
	}

	if df.Instructions > 0 {
		df.DualIssue = 2 * float64(df.Pairs) / float64(df.Instructions)
		if df.CriticalPath > 0 {
			df.ILP = float64(df.Instructions) / float64(df.CriticalPath)
		}
	}
	return df
}
