// Package ircheck statically verifies kernel-IR programs and derives the
// dataflow facts the throughput model consumes.
//
// The paper's Section VI model is built entirely on static machine-code
// analysis — instruction-class counts and dependency structure read out of
// cuobjdump -sass (Tables III–VI). This package is the corresponding
// correctness layer for our virtual ISA: a verifier that proves SSA
// well-formedness and per-architecture legality after every compile pass
// (so a lowering or folding step that drops, duplicates or illegally
// reorders an operation is caught at the pass that introduced it, not by
// whichever differential test happens to execute the broken path), plus a
// dependency-chain analyzer (see dataflow.go) that turns the hand-set
// dual-issue fraction δ and ILP bound into derived facts.
package ircheck

import (
	"fmt"
	"strings"

	"keysearch/internal/arch"
	"keysearch/internal/kernel"
)

// Rule identifies which verifier rule a violation broke.
type Rule string

// Verifier rules. SSA rules hold at every pipeline stage; legality rules
// are enforced on machine programs (Options.CheckArch); tidiness rules
// only at the end of the pipeline (Options.RequireTidy).
const (
	// SSA well-formedness.
	RuleShape       Rule = "shape"         // malformed program header (reg counts, outputs)
	RuleUnknownOp   Rule = "unknown-op"    // operation outside the virtual ISA
	RuleDstBounds   Rule = "dst-bounds"    // destination register out of range
	RuleWriteInput  Rule = "write-input"   // instruction overwrites an input register
	RuleRedefine    Rule = "redefine"      // second assignment to an SSA register
	RuleUseUndef    Rule = "use-undef"     // operand reads a register with no prior def
	RuleOperand     Rule = "operand"       // operand register index out of range
	RuleShiftRange  Rule = "shift-range"   // shift/rotate amount outside its legal range
	RuleSpuriousSh  Rule = "spurious-sh"   // non-shift operation carries a shift amount
	RuleSpuriousB   Rule = "spurious-b"    // unary operation carries a live B operand
	RuleExitShape   Rule = "exit-shape"    // exit check writes a destination
	RuleOutputUndef Rule = "output-undef"  // program output register never defined
	// Per-architecture legality (Tables III–VI gating).
	RulePseudo Rule = "pseudo"   // pseudo-op survives into a machine program
	RuleArch   Rule = "arch-gate" // operation illegal on the target architecture
	// Multi-target pre-screen integrity (enforced at every stage: a broken
	// bank would silently drop keys, not just miscompile).
	RuleBloomBank Rule = "bloom-bank" // LDC.BLOOM with a missing or non-power-of-two bank
	// Tidiness (end-of-pipeline state).
	RuleNop  Rule = "nop"       // OpNop placeholder survives compaction
	RuleMov  Rule = "mov"       // un-propagated copy survives
	RuleDead Rule = "dead-code" // result never observed by an exit or output
)

// Violation is one broken rule at one instruction.
type Violation struct {
	Rule  Rule
	Index int // instruction index, or -1 for program-level violations
	Msg   string
}

func (v Violation) String() string {
	if v.Index < 0 {
		return fmt.Sprintf("%s: %s", v.Rule, v.Msg)
	}
	return fmt.Sprintf("%s at #%d: %s", v.Rule, v.Index, v.Msg)
}

// Options selects which rule families Check enforces.
type Options struct {
	// AllowPseudo permits OpRotl, the source-level pseudo rotation.
	// Source programs and every pipeline stage before rotate lowering
	// need it; machine programs must not.
	AllowPseudo bool
	// AllowNop permits OpNop placeholders (mid-pipeline state; passes fold
	// instructions to Nop and compact strips them at the very end).
	AllowNop bool
	// AllowMov permits OpMov copies (builder output; copy propagation
	// erases them).
	AllowMov bool
	// CheckArch enforces the per-architecture legality rules of Arch.
	CheckArch bool
	// Arch is the target architecture for legality gating.
	Arch arch.CC
	// RequireTidy additionally rejects dead instructions — the state the
	// pipeline must end in after dead-code elimination and compaction.
	RequireTidy bool
}

// Source returns the options for builder-produced source programs:
// pseudo rotations and copies allowed, no architecture gating.
func Source() Options { return Options{AllowPseudo: true, AllowNop: true, AllowMov: true} }

// MidPass returns the options for programs between compile passes: like
// Source (rotates may not be lowered yet, folds leave Nops behind).
func MidPass() Options { return Source() }

// Machine returns the options for fully compiled programs targeting cc:
// no pseudo-ops, no placeholders, no dead code, legality enforced. MOV
// stays legal — a copy that materializes a constant program output has no
// register to propagate into (real machine code keeps an MOV32I there
// too); copy propagation erases every other copy.
func Machine(cc arch.CC) Options {
	return Options{AllowMov: true, CheckArch: true, Arch: cc, RequireTidy: true}
}

// Check verifies p against opt and returns every violation found. A nil
// or empty result means the program is well-formed.
func Check(p *kernel.Program, opt Options) []Violation {
	var vs []Violation
	add := func(rule Rule, idx int, format string, args ...any) {
		vs = append(vs, Violation{Rule: rule, Index: idx, Msg: fmt.Sprintf(format, args...)})
	}

	if p.NumInputs < 0 || p.NumRegs < p.NumInputs {
		add(RuleShape, -1, "register file %d smaller than input count %d", p.NumRegs, p.NumInputs)
		return vs // everything below indexes registers; bail out
	}

	// defined[r] is true once r has a definition (inputs are defined at
	// entry). defAt records the defining instruction for diagnostics.
	defined := make([]bool, p.NumRegs)
	for r := 0; r < p.NumInputs; r++ {
		defined[r] = true
	}
	defAt := make([]int, p.NumRegs)
	usesBloom := false

	checkOperand := func(idx int, name string, o kernel.Operand) {
		if o.IsImm {
			return
		}
		if o.Reg < 0 || o.Reg >= p.NumRegs {
			add(RuleOperand, idx, "operand %s reads r%d outside register file [0,%d)", name, o.Reg, p.NumRegs)
			return
		}
		if !defined[o.Reg] {
			add(RuleUseUndef, idx, "operand %s reads r%d before any definition", name, o.Reg)
		}
	}

	for idx, in := range p.Instrs {
		switch in.Op {
		case kernel.OpNop:
			if !opt.AllowNop {
				add(RuleNop, idx, "NOP placeholder survives compaction")
			}
			continue
		case kernel.OpMov:
			if !opt.AllowMov {
				add(RuleMov, idx, "un-propagated MOV survives copy propagation")
			}
		case kernel.OpRotl:
			if !opt.AllowPseudo {
				add(RulePseudo, idx, "pseudo ROTL survives into a machine program")
			}
		case kernel.OpAdd, kernel.OpAnd, kernel.OpOr, kernel.OpXor, kernel.OpNot,
			kernel.OpShl, kernel.OpShr, kernel.OpAndN, kernel.OpOrN,
			kernel.OpIMADHi, kernel.OpISCADD, kernel.OpPerm, kernel.OpFunnel,
			kernel.OpExitNE, kernel.OpBloomBit:
		default:
			add(RuleUnknownOp, idx, "operation %d outside the virtual ISA", int(in.Op))
			continue
		}

		if in.Op == kernel.OpBloomBit {
			usesBloom = true
		}
		if opt.CheckArch {
			archGate(add, idx, in.Op, opt.Arch)
		}

		// Shift-amount legality per operation family.
		switch in.Op {
		case kernel.OpShl, kernel.OpShr:
			if in.Sh > 31 {
				add(RuleShiftRange, idx, "%v shift amount %d outside [0,31]", in.Op, in.Sh)
			}
		case kernel.OpRotl, kernel.OpFunnel, kernel.OpIMADHi:
			// A zero rotation is the identity; builders and lowering never
			// emit it, and IMAD.HI with sh=0 would read (a >> 32).
			if in.Sh < 1 || in.Sh > 31 {
				add(RuleShiftRange, idx, "%v rotate amount %d outside [1,31]", in.Op, in.Sh)
			}
		case kernel.OpISCADD:
			if in.Sh < 1 || in.Sh > 31 {
				add(RuleShiftRange, idx, "%v scale amount %d outside [1,31]", in.Op, in.Sh)
			}
		case kernel.OpPerm:
			// PRMT performs byte rotations only.
			if in.Sh != 8 && in.Sh != 16 && in.Sh != 24 {
				add(RuleShiftRange, idx, "PRMT rotation %d not byte-aligned (8/16/24)", in.Sh)
			}
		default:
			if in.Sh != 0 {
				add(RuleSpuriousSh, idx, "%v carries shift amount %d", in.Op, in.Sh)
			}
		}

		// Unary operations must carry an inert B (the canonical encoding is
		// Imm(0)); a live register there would miscount uses and liveness.
		switch in.Op {
		case kernel.OpNot, kernel.OpMov, kernel.OpShl, kernel.OpShr,
			kernel.OpRotl, kernel.OpPerm, kernel.OpFunnel, kernel.OpBloomBit:
			if !in.B.IsImm || in.B.Imm != 0 {
				add(RuleSpuriousB, idx, "unary %v carries live B operand %v", in.Op, in.B)
			}
			checkOperand(idx, "A", in.A)
		case kernel.OpExitNE:
			checkOperand(idx, "A", in.A)
			checkOperand(idx, "B", in.B)
		default:
			checkOperand(idx, "A", in.A)
			checkOperand(idx, "B", in.B)
		}

		if in.Op == kernel.OpExitNE {
			if in.Dst != -1 {
				add(RuleExitShape, idx, "EXIT.NE writes destination r%d", in.Dst)
			}
			continue
		}

		// Destination: fresh SSA register outside the input window.
		if in.Dst < 0 || in.Dst >= p.NumRegs {
			add(RuleDstBounds, idx, "destination r%d outside register file [0,%d)", in.Dst, p.NumRegs)
			continue
		}
		if in.Dst < p.NumInputs {
			add(RuleWriteInput, idx, "destination r%d overwrites an input register", in.Dst)
			continue
		}
		if defined[in.Dst] {
			add(RuleRedefine, idx, "r%d already defined at #%d", in.Dst, defAt[in.Dst])
			continue
		}
		defined[in.Dst] = true
		defAt[in.Dst] = idx
	}

	for i, r := range p.Outputs {
		if r < 0 || r >= p.NumRegs {
			add(RuleShape, -1, "output %d references r%d outside register file [0,%d)", i, r, p.NumRegs)
			continue
		}
		if !defined[r] {
			add(RuleOutputUndef, -1, "output %d reads r%d, which is never defined", i, r)
		}
	}

	// Bank integrity holds at every stage: a Bloom probe against a missing
	// bank rejects every candidate (silently dropping keys), and a
	// non-power-of-two bank breaks the mask-wrap indexing contract of
	// Program.BloomBit. Either way the search is wrong before any
	// architecture question arises.
	if usesBloom {
		switch n := len(p.Bloom); {
		case n == 0:
			add(RuleBloomBank, -1, "LDC.BLOOM used but the program has no Bloom bank")
		case n&(n-1) != 0:
			add(RuleBloomBank, -1, "Bloom bank length %d words is not a power of two", n)
		}
	}

	if opt.RequireTidy {
		for _, idx := range Dead(p) {
			add(RuleDead, idx, "%v result r%d is never observed", p.Instrs[idx].Op, p.Instrs[idx].Dst)
		}
	}
	return vs
}

// archGate enforces the per-architecture instruction gating the paper's
// Tables III–VI imply: PRMT exists from cc2.x (and pays from cc3.0), the
// funnel shift is the cc3.5 extension, and the IMAD/ISCADD rotate lowering
// replaces the cc1.x SHL+SHR+ADD triple only from cc2.x on.
func archGate(add func(Rule, int, string, ...any), idx int, op kernel.Op, cc arch.CC) {
	switch op {
	case kernel.OpPerm:
		if !hasPerm(cc) {
			add(RuleArch, idx, "PRMT illegal on cc %v (requires cc >= 2.x)", cc)
		}
	case kernel.OpFunnel:
		if !cc.HasFunnelShift() {
			add(RuleArch, idx, "funnel shift illegal on cc %v (requires cc 3.5)", cc)
		}
	case kernel.OpIMADHi, kernel.OpISCADD:
		if !cc.HasIMAD() {
			add(RuleArch, idx, "%v illegal on cc %v (MAD rotate lowering requires cc >= 2.0)", op, cc)
		}
	case kernel.OpBloomBit:
		// Legal on every modeled architecture: constant memory with a
		// broadcast cache exists from cc1.x on — it is where the paper keeps
		// the target hash and common substring.
	}
}

// hasPerm reports whether PRMT exists on the architecture. This is
// distinct from arch.CC.HasBytePerm, which answers the profitability
// question ("is PRMT worth using") the compiler asks: the instruction is
// part of the ISA from compute capability 2.0 on, but the paper only
// applies it on cc3.0 where the shift group is the bottleneck.
func hasPerm(cc arch.CC) bool { return cc >= arch.CC20 }

// Dead returns the indices of instructions whose results are never
// observed through an exit check or a program output — the instructions
// dead-code elimination must remove. Nop placeholders are not reported
// (they carry no result); exit checks are always live.
func Dead(p *kernel.Program) []int {
	live := make([]bool, p.NumRegs)
	for _, r := range p.Outputs {
		if r >= 0 && r < p.NumRegs {
			live[r] = true
		}
	}
	mark := func(o kernel.Operand) {
		if !o.IsImm && o.Reg >= 0 && o.Reg < p.NumRegs {
			live[o.Reg] = true
		}
	}
	for _, in := range p.Instrs {
		if in.Op == kernel.OpExitNE {
			mark(in.A)
			mark(in.B)
		}
	}
	var dead []int
	for i := len(p.Instrs) - 1; i >= 0; i-- {
		in := p.Instrs[i]
		if in.Op == kernel.OpNop || in.Op == kernel.OpExitNE {
			continue
		}
		if in.Dst < 0 || in.Dst >= p.NumRegs || !live[in.Dst] {
			dead = append(dead, i)
			continue
		}
		mark(in.A)
		mark(in.B)
	}
	// Reverse into program order.
	for l, r := 0, len(dead)-1; l < r; l, r = l+1, r-1 {
		dead[l], dead[r] = dead[r], dead[l]
	}
	return dead
}

// Verify is Check folded into a single error: nil when the program is
// well-formed, otherwise one error listing every violation.
func Verify(p *kernel.Program, opt Options) error {
	vs := Check(p, opt)
	if len(vs) == 0 {
		return nil
	}
	lines := make([]string, len(vs))
	for i, v := range vs {
		lines[i] = v.String()
	}
	return fmt.Errorf("ircheck: program %s: %d violation(s):\n  %s",
		p.Name, len(vs), strings.Join(lines, "\n  "))
}
