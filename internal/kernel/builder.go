package kernel

import "fmt"

// Val is a value under construction: either a register produced by a prior
// instruction (or an input) or a compile-time constant. Builders thread
// Vals through the hash rounds exactly like the CUDA source threads C
// expressions; the compile package decides later what folds.
type Val = Operand

// Builder assembles a straight-line Program. Each emitted instruction
// allocates a fresh SSA register.
type Builder struct {
	prog *Program
}

// NewBuilder starts a program with the given number of per-thread input
// registers (inputs occupy registers 0..numInputs-1).
func NewBuilder(name string, numInputs int) *Builder {
	return &Builder{prog: &Program{
		Name:      name,
		NumInputs: numInputs,
		NumRegs:   numInputs,
	}}
}

// Input returns the i-th input register as a value.
func (b *Builder) Input(i int) Val {
	if i < 0 || i >= b.prog.NumInputs {
		panic(fmt.Sprintf("kernel: input %d out of range", i))
	}
	return R(i)
}

// Const returns an immediate value.
func (b *Builder) Const(v uint32) Val { return Imm(v) }

func (b *Builder) emit(op Op, a, bb Val, sh uint8) Val {
	dst := b.prog.NumRegs
	b.prog.NumRegs++
	b.prog.Instrs = append(b.prog.Instrs, Instr{Op: op, Dst: dst, A: a, B: bb, Sh: sh})
	return R(dst)
}

// Add emits dst = x + y.
func (b *Builder) Add(x, y Val) Val { return b.emit(OpAdd, x, y, 0) }

// And emits dst = x & y.
func (b *Builder) And(x, y Val) Val { return b.emit(OpAnd, x, y, 0) }

// Or emits dst = x | y.
func (b *Builder) Or(x, y Val) Val { return b.emit(OpOr, x, y, 0) }

// Xor emits dst = x ^ y.
func (b *Builder) Xor(x, y Val) Val { return b.emit(OpXor, x, y, 0) }

// Not emits dst = ^x.
func (b *Builder) Not(x Val) Val { return b.emit(OpNot, x, Imm(0), 0) }

// Shl emits dst = x << n.
func (b *Builder) Shl(x Val, n uint8) Val { return b.emit(OpShl, x, Imm(0), n) }

// Shr emits dst = x >> n.
func (b *Builder) Shr(x Val, n uint8) Val { return b.emit(OpShr, x, Imm(0), n) }

// Rotl emits the pseudo rotate dst = rotl(x, n); lowering picks the
// machine idiom per architecture.
func (b *Builder) Rotl(x Val, n uint8) Val {
	n %= 32
	if n == 0 {
		return x
	}
	return b.emit(OpRotl, x, Imm(0), n)
}

// BloomBit emits dst = Bloom-bank bit (x mod banksize). The program must
// be given a bank with SetBloom before it runs or is verified.
func (b *Builder) BloomBit(x Val) Val { return b.emit(OpBloomBit, x, Imm(0), 0) }

// SetBloom attaches the constant-memory Bloom bank. The word count must be
// a power of two (the probe index wraps with a mask); ircheck enforces it.
func (b *Builder) SetBloom(words []uint32) { b.prog.Bloom = words }

// ExitNE emits a check: lanes where x != y exit with a negative verdict.
func (b *Builder) ExitNE(x, y Val) {
	b.prog.Instrs = append(b.prog.Instrs, Instr{Op: OpExitNE, Dst: -1, A: x, B: y})
}

// Output marks values as program results.
func (b *Builder) Output(vals ...Val) {
	for _, v := range vals {
		if v.IsImm {
			// Materialize so that outputs are always registers.
			v = b.emit(OpMov, v, Imm(0), 0)
		}
		b.prog.Outputs = append(b.prog.Outputs, v.Reg)
	}
}

// Build finalizes and returns the program.
func (b *Builder) Build() *Program { return b.prog }
