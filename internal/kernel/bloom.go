package kernel

import (
	"fmt"
	"math"
	"math/bits"
)

// This file is the IR side of multi-target search: a Bloom filter over
// digest state words, compiled into the kernel as a constant-memory bit
// bank (OpBloomBit) probed with plain Add/Rotl arithmetic. A lane that
// survives the pre-screen outputs its digest words for exact host-side
// confirmation (internal/targetset holds the sorted corpus); a lane whose
// digest misses any probe exits early, so the per-candidate cost of a
// million-target search stays within a handful of instructions of the
// single-target kernel. The paper ships the target hash and the common
// substring through constant memory for exactly this access pattern —
// warp-uniform-free, broadcast-cached reads.

// MaxBloomProbes bounds the probe count; it is the length of the constant
// schedule tables below.
const MaxBloomProbes = 8

// The probe schedule: probe i reads state word i mod len(state), adds a
// per-probe constant and rotates by a per-probe amount, then indexes the
// bank with the result. Digest state words are already uniform (they are
// hash outputs), so the add+rotate is only there to decorrelate the k
// probes from one another. Constants are odd 32-bit pieces of well-known
// hash constants; rotations are distinct and in [1,31] (Builder.Rotl and
// ircheck both reject 0).
var (
	bloomProbeAdd = [MaxBloomProbes]uint32{
		0x9e3779b9, 0x85ebca6b, 0xc2b2ae35, 0x27d4eb2f,
		0x165667b1, 0xd3a2646d, 0xfd7046c5, 0xb55a4f09,
	}
	bloomProbeRot = [MaxBloomProbes]uint8{13, 7, 17, 5, 11, 19, 23, 29}
)

// BloomSpec is a built filter: the bank words plus the probe count. The
// same spec drives host-side construction (Insert at build time), the
// emitted IR (AppendBloomPreScreen) and the host mirror (MayContain), so
// the three can be differential-tested against each other.
type BloomSpec struct {
	// Words is the bit bank; len(Words) is a power of two.
	Words []uint32
	// K is the number of probes per candidate, 1..MaxBloomProbes.
	K int
}

// NewBloomSpec sizes and populates a filter for the given digest states at
// the requested false-positive rate. Each state is one target digest as
// 32-bit words (e.g. the four MD5 state words); all must have the same
// nonzero length.
func NewBloomSpec(states [][]uint32, fpRate float64) (*BloomSpec, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("kernel: bloom spec needs at least one target state")
	}
	if fpRate <= 0 || fpRate > 0.5 || math.IsNaN(fpRate) {
		return nil, fmt.Errorf("kernel: false-positive rate %v outside (0, 0.5]", fpRate)
	}
	width := len(states[0])
	if width == 0 {
		return nil, fmt.Errorf("kernel: empty target state")
	}
	for i, st := range states {
		if len(st) != width {
			return nil, fmt.Errorf("kernel: target state %d has %d words, want %d", i, len(st), width)
		}
	}

	n := float64(len(states))
	mBits := n * -math.Log(fpRate) / (math.Ln2 * math.Ln2)
	words := 2 // 64-bit minimum bank
	for float64(words*32) < mBits {
		words *= 2
	}
	k := int(math.Round(float64(words*32) / n * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > MaxBloomProbes {
		k = MaxBloomProbes
	}

	s := &BloomSpec{Words: make([]uint32, words), K: k}
	for _, st := range states {
		for i := 0; i < k; i++ {
			idx := BloomProbe(st, i) & s.mask()
			s.Words[idx>>5] |= 1 << (idx & 31)
		}
	}
	return s, nil
}

func (s *BloomSpec) mask() uint32 { return uint32(len(s.Words)*32 - 1) }

// BloomProbe is the host mirror of the probe arithmetic the IR emits for
// probe i: rotl(state[i mod len] + C_i, R_i). The caller masks the result
// to the bank size (Program.BloomBit does the same on the device side).
func BloomProbe(state []uint32, i int) uint32 {
	w := state[i%len(state)]
	return bits.RotateLeft32(w+bloomProbeAdd[i], int(bloomProbeRot[i]))
}

// MayContain is the host-side filter check — the reference semantics the
// compiled pre-screen is differential-tested against. False negatives are
// impossible for inserted states; false positives occur at roughly the
// requested rate and are the confirm stage's problem.
func (s *BloomSpec) MayContain(state []uint32) bool {
	for i := 0; i < s.K; i++ {
		idx := BloomProbe(state, i) & s.mask()
		if s.Words[idx>>5]&(1<<(idx&31)) == 0 {
			return false
		}
	}
	return true
}

// AppendBloomPreScreen emits the filter probes over the given state values
// and an early exit per probe: a lane whose digest misses any probe bit
// exits with a negative verdict immediately (the Section V early-exit
// discipline applied to the multi-target test). The builder's program must
// carry the spec's bank (SetBloom is called here).
func AppendBloomPreScreen(b *Builder, state []Val, spec *BloomSpec) {
	b.SetBloom(spec.Words)
	for i := 0; i < spec.K; i++ {
		t := b.Add(state[i%len(state)], b.Const(bloomProbeAdd[i]))
		r := b.Rotl(t, bloomProbeRot[i])
		bit := b.BloomBit(r)
		b.ExitNE(bit, b.Const(1))
	}
}

// BuildMD5Bloom assembles the multi-target MD5 kernel: full 64-step hash
// plus feed-forward, Bloom pre-screen over the four digest words, and the
// digest words as outputs so the host can exact-confirm surviving lanes
// against the corpus index. Reversal does not apply here — with many
// targets there is no single final state to run backward from, which is
// why the corpus path pays the full 64 steps (the flat-in-corpus-size
// trade the audit scenario accepts).
func BuildMD5Bloom(template [16]uint32, spec *BloomSpec) *Program {
	b, digest := buildMD5Digest("md5+bloom", template)
	AppendBloomPreScreen(b, digest, spec)
	b.Output(digest...)
	return b.Build()
}
