package kernel

import (
	"crypto/md5"
	"crypto/sha1"
	"math/rand"
	"testing"

	"keysearch/internal/hash/md5x"
	"keysearch/internal/hash/sha1x"
)

func md5Template(t *testing.T, key string) ([16]uint32, [4]uint32) {
	t.Helper()
	var block [16]uint32
	if err := md5x.PackKey([]byte(key), &block); err != nil {
		t.Fatal(err)
	}
	return block, md5x.StateWords(md5.Sum([]byte(key)))
}

func sha1Template(t *testing.T, key string) ([16]uint32, [5]uint32) {
	t.Helper()
	var block [16]uint32
	if err := sha1x.PackKey([]byte(key), &block); err != nil {
		t.Fatal(err)
	}
	return block, sha1x.StateWords(sha1.Sum([]byte(key)))
}

// TestBuildMD5HashMatchesOracle runs the IR hashing program over random
// word-0 inputs and compares against the scratch MD5.
func TestBuildMD5HashMatchesOracle(t *testing.T) {
	block, _ := md5Template(t, "abcdWXYZ")
	prog := BuildMD5Hash(block)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		w0 := rng.Uint32()
		out, _, err := Run(prog, []uint32{w0})
		if err != nil {
			t.Fatal(err)
		}
		b := block
		b[0] = w0
		want := md5x.SumPacked(&b)
		for j := 0; j < 4; j++ {
			if out[j] != want[j] {
				t.Fatalf("w0=%08x: out[%d]=%08x, want %08x", w0, j, out[j], want[j])
			}
		}
	}
}

func TestBuildSHA1HashMatchesOracle(t *testing.T) {
	block, _ := sha1Template(t, "abcdWXYZ")
	prog := BuildSHA1Hash(block)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		w0 := rng.Uint32()
		out, _, err := Run(prog, []uint32{w0})
		if err != nil {
			t.Fatal(err)
		}
		b := block
		b[0] = w0
		want := sha1x.SumPacked(&b)
		for j := 0; j < 5; j++ {
			if out[j] != want[j] {
				t.Fatalf("w0=%08x: out[%d]=%08x, want %08x", w0, j, out[j], want[j])
			}
		}
	}
}

// TestBuildMD5SearchVariants checks that every optimization tier accepts
// exactly the matching word 0.
func TestBuildMD5SearchVariants(t *testing.T) {
	block, target := md5Template(t, "Key4SUFF")
	for _, cfg := range []MD5Config{
		{Template: block, Target: target},
		{Template: block, Target: target, EarlyExit: true},
		{Template: block, Target: target, Reversal: true},
		{Template: block, Target: target, Reversal: true, EarlyExit: true},
	} {
		prog := BuildMD5(cfg)
		if !Match(prog, block[0]) {
			t.Errorf("%s: rejected matching candidate", prog.Name)
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 3000; i++ {
			w := rng.Uint32()
			if w == block[0] {
				continue
			}
			if Match(prog, w) {
				t.Fatalf("%s: false positive %08x", prog.Name, w)
			}
		}
	}
}

func TestBuildMD5Interleaved(t *testing.T) {
	block, target := md5Template(t, "Key4SUFF")
	prog := BuildMD5(MD5Config{Template: block, Target: target, Reversal: true, EarlyExit: true, Interleave: true})
	if prog.NumInputs != 2 {
		t.Fatalf("interleaved program has %d inputs", prog.NumInputs)
	}
	// Either slot matching must survive... the pair survives only if both
	// exit chains pass; since exits kill on mismatch, a pair survives only
	// when BOTH match. The harness therefore pairs each candidate with
	// itself-shifted runs — here we verify the defined semantics.
	if !Match(prog, block[0], block[0]) {
		t.Error("both-match pair rejected")
	}
	if Match(prog, block[0], block[0]+1) {
		t.Error("half-match pair accepted (semantics changed?)")
	}
	// The ILP variant must expose far more dual-issue opportunity.
	single := BuildMD5(MD5Config{Template: block, Target: target, Reversal: true, EarlyExit: true})
	if d2, d1 := prog.DualIssueFraction(), single.DualIssueFraction(); d2 < d1+0.3 {
		t.Errorf("interleaved dual-issue fraction %.2f not well above single %.2f", d2, d1)
	}
}

func TestBuildSHA1SearchVariants(t *testing.T) {
	block, target := sha1Template(t, "Key4SUFF")
	for _, cfg := range []SHA1Config{
		{Template: block, Target: target},
		{Template: block, Target: target, EarlyExit: true},
	} {
		prog := BuildSHA1(cfg)
		if !Match(prog, block[0]) {
			t.Errorf("%s: rejected matching candidate", prog.Name)
		}
		rng := rand.New(rand.NewSource(10))
		for i := 0; i < 2000; i++ {
			w := rng.Uint32()
			if w == block[0] {
				continue
			}
			if Match(prog, w) {
				t.Fatalf("%s: false positive %08x", prog.Name, w)
			}
		}
	}
}

// TestTableIIISourceCounts verifies the source-level instruction counts of
// the plain 64-step MD5 kernel against Table III: 320 additions, 160
// logicals, 128 shifts (from 64 two-shift rotations). The paper's NOT row
// (160) disagrees with the structural count of the round functions (48 =
// 16 F + 16 G + 16 I); we assert our structural value and record the delta
// in EXPERIMENTS.md.
func TestTableIIISourceCounts(t *testing.T) {
	block, target := md5Template(t, "Key4")
	prog := BuildMD5(MD5Config{Template: block, Target: target})
	c := prog.CountClasses()
	// 64 steps x 5 additions (3 sum terms, 1 in the rotate idiom, 1 final
	// b+rot) + 4 feed-forward = 324; Table III counts the hash body: 320.
	if got := c[ClassAdd]; got != 324 {
		t.Errorf("source IADD = %d, want 324 (Table III: 320 + 4 feed-forward)", got)
	}
	if got := c[ClassLogic] - prog.CountNot(); got != 160 {
		t.Errorf("source AND/OR/XOR = %d, want 160 (Table III)", got)
	}
	if got := c[ClassShift]; got != 128 {
		t.Errorf("source SHR/SHL = %d, want 128 (Table III)", got)
	}
	if got := prog.CountNot(); got != 48 {
		t.Errorf("source NOT = %d, want 48 (Table III says 160; see EXPERIMENTS.md)", got)
	}
	if c[ClassMAD] != 0 || c[ClassPerm] != 0 {
		t.Error("source program must not contain machine-only classes")
	}
}

func TestDualIssueFractionLowOnChain(t *testing.T) {
	block, target := md5Template(t, "Key4")
	prog := BuildMD5(MD5Config{Template: block, Target: target, Reversal: true, EarlyExit: true})
	if d := prog.DualIssueFraction(); d > 0.45 {
		t.Errorf("single-stream MD5 dual-issue fraction = %.2f, expected a dependency chain", d)
	}
}

func TestFirstExit(t *testing.T) {
	block, target := md5Template(t, "Key4")
	early := BuildMD5(MD5Config{Template: block, Target: target, Reversal: true, EarlyExit: true})
	late := BuildMD5(MD5Config{Template: block, Target: target, Reversal: true})
	if early.FirstExit() >= late.FirstExit() {
		t.Errorf("early-exit kernel first exit %d not before %d", early.FirstExit(), late.FirstExit())
	}
	if late.FirstExit() >= len(late.Instrs) {
		t.Error("no exits in search kernel")
	}
}

func TestRunErrors(t *testing.T) {
	block, target := md5Template(t, "Key4")
	prog := BuildMD5(MD5Config{Template: block, Target: target})
	if _, _, err := Run(prog, nil); err == nil {
		t.Error("wrong input count: want error")
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder("t", 1)
	defer func() {
		if recover() == nil {
			t.Error("Input out of range should panic")
		}
	}()
	b.Input(5)
}

func TestRotlZeroIsIdentity(t *testing.T) {
	b := NewBuilder("t", 1)
	v := b.Rotl(b.Input(0), 32)
	if v != b.Input(0) {
		t.Error("rotl by 32 should be the identity value")
	}
	if len(b.Build().Instrs) != 0 {
		t.Error("rotl by 32 should emit nothing")
	}
}

func TestInstrString(t *testing.T) {
	ins := []Instr{
		{Op: OpAdd, Dst: 3, A: R(1), B: Imm(7)},
		{Op: OpShl, Dst: 4, A: R(3), Sh: 5},
		{Op: OpIMADHi, Dst: 5, A: R(4), B: R(1), Sh: 25},
		{Op: OpExitNE, Dst: -1, A: R(5), B: Imm(1)},
		{Op: OpNot, Dst: 6, A: R(5)},
	}
	for _, in := range ins {
		if in.String() == "" {
			t.Errorf("empty disassembly for %v", in.Op)
		}
	}
}

func TestBuildSHA1Interleaved(t *testing.T) {
	block, target := sha1Template(t, "Key4SUFF")
	prog := BuildSHA1(SHA1Config{Template: block, Target: target, EarlyExit: true, Interleave: true})
	if prog.NumInputs != 2 {
		t.Fatalf("interleaved SHA1 has %d inputs", prog.NumInputs)
	}
	if !Match(prog, block[0], block[0]) {
		t.Error("both-match pair rejected")
	}
	if Match(prog, block[0], block[0]+1) {
		t.Error("half-match pair accepted")
	}
	single := BuildSHA1(SHA1Config{Template: block, Target: target, EarlyExit: true})
	if d2, d1 := prog.DualIssueFraction(), single.DualIssueFraction(); d2 < d1+0.3 {
		t.Errorf("interleaved SHA1 dual-issue %.2f not well above single %.2f", d2, d1)
	}
}
