// Package kernel defines the virtual instruction set the simulated GPU
// executes and builds the MD5/SHA1 search kernels in it.
//
// The paper derives its performance results from the machine code nvcc
// emits (inspected with cuobjdump -sass): instruction counts per class
// (Tables III–VI) and the per-architecture lowering of the rotate idiom
// (SHL+SHR+ADD on cc1.x, SHL+IMAD.HI on cc2.x/3.0, PRMT for 16-bit
// rotations, funnel shift on cc3.5). This package models that layer: a
// small SSA-style register IR with exactly the operation classes the paper
// accounts for, kernel builders that emit the "CUDA source level" program,
// and (in internal/compile) the lowering and folding passes that turn it
// into the per-architecture machine program whose class counts reproduce
// the tables.
package kernel

import (
	"fmt"
	"math/bits"
)

// Class buckets instructions the way Tables II–VI do.
type Class int

// Instruction classes. ClassNone marks pseudo-instructions that cost
// nothing (constant materialization from the constant bank is overlapped
// with arithmetic and never dominates; the paper ships the target hash and
// the common substring through constant memory for this reason).
const (
	ClassNone    Class = iota
	ClassAdd           // 32-bit integer addition
	ClassLogic         // 32-bit bitwise AND/OR/XOR (including merged-NOT forms)
	ClassShift         // 32-bit integer shift (SHL/SHR, funnel shift)
	ClassMAD           // integer multiply-add family (IMAD.HI, ISCADD)
	ClassPerm          // PRMT / __byte_perm
	ClassControl       // compare-and-exit; not part of the paper's tables
	ClassLoad          // constant-cache load (Bloom bank probe); not in the tables
)

// NumClasses is the number of distinct instruction classes — the size of
// a dense per-class array (hot paths accumulate into one instead of a
// map).
const NumClasses = int(ClassLoad) + 1

// String names the class as the tables do.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassAdd:
		return "IADD"
	case ClassLogic:
		return "AND/OR/XOR"
	case ClassShift:
		return "SHR/SHL"
	case ClassMAD:
		return "IMAD/ISCADD"
	case ClassPerm:
		return "PRMT"
	case ClassControl:
		return "control"
	case ClassLoad:
		return "LDC"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Op is a virtual-ISA operation.
type Op int

// Source-level operations (emitted by builders) and machine-level
// operations (produced by lowering).
const (
	OpNop Op = iota
	// Source + machine level.
	OpAdd // dst = a + b
	OpAnd // dst = a & b
	OpOr  // dst = a | b
	OpXor // dst = a ^ b
	OpNot // dst = ^a
	OpShl // dst = a << sh
	OpShr // dst = a >> sh
	// Pseudo (source level only; lowered per architecture).
	OpRotl // dst = rotl(a, sh)
	// Machine level only (introduced by compile passes).
	OpAndN   // dst = a & ^b (NOT merged into AND)
	OpOrN    // dst = a | ^b (NOT merged into OR)
	OpIMADHi // dst = (a >> (32-sh)) + b   — IMAD.HI(a, 2^sh, b)
	OpISCADD // dst = (a << sh) + b
	OpPerm   // dst = rotl(a, sh), sh in {8,16,24} — PRMT byte rotation
	OpFunnel // dst = rotl(a, sh) — cc3.5 funnel shift (SHF)
	// Control.
	OpExitNE // if a != b the lane exits with a negative verdict
	OpMov    // dst = a (erased by copy propagation)
	// Constant-memory load (legal at every stage; the multi-target Bloom
	// pre-screen of Section V's audit scenario — the bank lives where the
	// paper keeps the target hash and common substring: constant memory).
	OpBloomBit // dst = bit (a mod bankbits) of the program's Bloom bank
)

// Classify returns the accounting class of an operation.
func (o Op) Classify() Class {
	switch o {
	case OpAdd:
		return ClassAdd
	case OpAnd, OpOr, OpXor, OpNot, OpAndN, OpOrN:
		return ClassLogic
	case OpShl, OpShr, OpFunnel:
		return ClassShift
	case OpIMADHi, OpISCADD:
		return ClassMAD
	case OpPerm:
		return ClassPerm
	case OpExitNE:
		return ClassControl
	case OpBloomBit:
		return ClassLoad
	default:
		return ClassNone
	}
}

// String returns the mnemonic.
func (o Op) String() string {
	names := map[Op]string{
		OpNop: "NOP", OpAdd: "IADD", OpAnd: "AND", OpOr: "OR", OpXor: "XOR",
		OpNot: "NOT", OpShl: "SHL", OpShr: "SHR", OpRotl: "ROTL",
		OpAndN: "ANDN", OpOrN: "ORN", OpIMADHi: "IMAD.HI", OpISCADD: "ISCADD",
		OpPerm: "PRMT", OpFunnel: "SHF", OpExitNE: "EXIT.NE", OpMov: "MOV",
		OpBloomBit: "LDC.BLOOM",
	}
	if n, ok := names[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsPseudo reports whether the operation must be lowered before execution
// on a machine target.
func (o Op) IsPseudo() bool { return o == OpRotl }

// Operand is either a register reference or an immediate value.
type Operand struct {
	IsImm bool
	Reg   int
	Imm   uint32
}

// R makes a register operand.
func R(reg int) Operand { return Operand{Reg: reg} }

// Imm makes an immediate operand.
func Imm(v uint32) Operand { return Operand{IsImm: true, Imm: v} }

// String formats the operand.
func (o Operand) String() string {
	if o.IsImm {
		return fmt.Sprintf("0x%08x", o.Imm)
	}
	return fmt.Sprintf("r%d", o.Reg)
}

// Instr is one instruction. Dst is -1 for instructions without a result
// (OpExitNE). Sh carries the shift amount for shift-family operations.
type Instr struct {
	Op   Op
	Dst  int
	A, B Operand
	Sh   uint8
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpShl, OpShr, OpRotl, OpPerm, OpFunnel:
		return fmt.Sprintf("%-8s r%d, %s, %d", in.Op, in.Dst, in.A, in.Sh)
	case OpIMADHi, OpISCADD:
		return fmt.Sprintf("%-8s r%d, %s, %d, %s", in.Op, in.Dst, in.A, in.Sh, in.B)
	case OpNot, OpMov, OpBloomBit:
		return fmt.Sprintf("%-8s r%d, %s", in.Op, in.Dst, in.A)
	case OpExitNE:
		return fmt.Sprintf("%-8s %s, %s", in.Op, in.A, in.B)
	default:
		return fmt.Sprintf("%-8s r%d, %s, %s", in.Op, in.Dst, in.A, in.B)
	}
}

// Eval computes the result of a single instruction given operand values.
// It panics on OpExitNE (handled by the interpreter) and pseudo/meta ops
// the interpreter should never see after lowering — except OpRotl, which
// evaluates directly so that source-level programs are also executable.
func Eval(op Op, a, b uint32, sh uint8) uint32 {
	switch op {
	case OpAdd:
		return a + b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpNot:
		return ^a
	case OpAndN:
		return a & ^b
	case OpOrN:
		return a | ^b
	case OpShl:
		return a << sh
	case OpShr:
		return a >> sh
	case OpRotl, OpPerm, OpFunnel:
		return bits.RotateLeft32(a, int(sh))
	case OpIMADHi:
		return (a >> (32 - uint32(sh))) + b
	case OpISCADD:
		return (a << sh) + b
	case OpMov:
		return a
	default:
		// OpBloomBit reaches here too: its result depends on the program's
		// Bloom bank, so interpreters must special-case it (Program.BloomBit)
		// rather than evaluate it operand-only.
		panic(fmt.Sprintf("kernel: Eval on %v", op))
	}
}

// Program is a straight-line SSA program: registers 0..NumInputs-1 are the
// per-thread inputs, every instruction writes a fresh register (except
// OpExitNE), and execution either survives every exit check (a match) or
// dies at the first failing one.
type Program struct {
	Name      string
	NumInputs int
	NumRegs   int
	Instrs    []Instr
	// Outputs lists registers whose final values are the program results
	// (kept live through dead-code elimination alongside exit checks).
	Outputs []int
	// Bloom is the constant-memory bit bank OpBloomBit indexes, as 32-bit
	// words. Its length must be a power of two (ircheck's bloom-bank rule)
	// so the probe index wraps with a mask. Nil for programs without a
	// multi-target pre-screen; shared read-only across clones and lanes.
	Bloom []uint32
}

// BloomBit returns bit (idx mod banksize) of the Bloom bank, or 0 when the
// program has no bank (a bank-less program rejects everything, which is the
// safe direction: no false accept can come from a missing bank).
func (p *Program) BloomBit(idx uint32) uint32 {
	if len(p.Bloom) == 0 {
		return 0
	}
	i := idx & uint32(len(p.Bloom)*32-1)
	return (p.Bloom[i>>5] >> (i & 31)) & 1
}

// Counts maps each accounting class to its static instruction count.
type Counts map[Class]int

// Total sums the counted classes of the paper's tables (Add, Logic,
// Shift, MAD, Perm), excluding control, loads and pseudo bookkeeping —
// Tables III–VI predate the multi-target extension, so constant-cache
// loads are accounted separately (Loads) and folded into the model's
// issue bound rather than the five-class total.
func (c Counts) Total() int {
	return c[ClassAdd] + c[ClassLogic] + c[ClassShift] + c[ClassMAD] + c[ClassPerm]
}

// Loads returns the constant-cache load count (Bloom bank probes).
func (c Counts) Loads() int { return c[ClassLoad] }

// ShiftMAD returns the combined shift/MAD/PRMT count — the class the paper
// identifies as the Kepler bottleneck.
func (c Counts) ShiftMAD() int { return c[ClassShift] + c[ClassMAD] + c[ClassPerm] }

// AddLogic returns the combined addition/logical count — the class the
// paper identifies as the Fermi bottleneck.
func (c Counts) AddLogic() int { return c[ClassAdd] + c[ClassLogic] }

// CountClasses tallies the program's instructions per class. Pseudo
// rotations are counted as they would appear in CUDA source, i.e. two
// shifts plus one addition ((x<<n)+(x>>(32-n))) — this is how Table III
// counts the unlowered kernel.
func (p *Program) CountClasses() Counts {
	c := make(Counts)
	for _, in := range p.Instrs {
		if in.Op == OpRotl {
			c[ClassShift] += 2
			c[ClassAdd]++
			continue
		}
		if in.Op == OpMov || in.Op == OpNop {
			continue
		}
		c[in.Op.Classify()]++
	}
	return c
}

// CountNot tallies unary NOT operations separately (Table III lists them
// in their own row; compilation merges them into neighboring logicals).
func (p *Program) CountNot() int {
	n := 0
	for _, in := range p.Instrs {
		if in.Op == OpNot {
			n++
		}
	}
	return n
}

// HasPseudo reports whether any pseudo-ops remain (i.e. the program has
// not been lowered).
func (p *Program) HasPseudo() bool {
	for _, in := range p.Instrs {
		if in.Op.IsPseudo() {
			return true
		}
	}
	return false
}

// FirstExit returns the index of the first OpExitNE, or len(Instrs) if
// there is none. Instructions up to and including it are what a mismatched
// candidate executes — the early-exit saving of Section V.
func (p *Program) FirstExit() int {
	for i, in := range p.Instrs {
		if in.Op == OpExitNE {
			return i
		}
	}
	return len(p.Instrs)
}

// DualIssueFraction is the fraction of instructions that could dual-issue
// with their predecessor: adjacent pairs with no register dependence and
// both sides costing an issue slot. The paper measured this with the CUDA
// profiler ("the number of instructions dispatched in a dual-issue fashion
// is very low, less than 10%") — a long dependency chain like MD5 scores
// near zero unless two hashes are interleaved.
func (p *Program) DualIssueFraction() float64 {
	issued := 0
	paired := 0
	for i, in := range p.Instrs {
		if in.Op == OpNop || in.Op == OpMov {
			continue
		}
		issued++
		if i == 0 {
			continue
		}
		prev := p.Instrs[i-1]
		if prev.Op == OpNop || prev.Op == OpMov || prev.Op == OpExitNE {
			continue
		}
		if prev.Dst >= 0 &&
			((!in.A.IsImm && in.A.Reg == prev.Dst) || (!in.B.IsImm && in.B.Reg == prev.Dst)) {
			continue
		}
		paired++
	}
	if issued == 0 {
		return 0
	}
	return float64(paired) / float64(issued)
}
