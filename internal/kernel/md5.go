package kernel

import "keysearch/internal/hash/md5x"

// MD5Config describes the MD5 search kernel to build. It mirrors the
// optimization tiers of Section V: Table IV is the kernel with neither
// Reversal nor EarlyExit, Table V adds both, Table VI additionally lets the
// compiler use byte-perm rotations (a compile-pass option, not a build
// option — see compile.Options.BytePerm).
type MD5Config struct {
	// Template is the packed single-block message. Word 0 is replaced by
	// the per-thread input; words 1..15 (key suffix, padding, bit length)
	// are baked into the program as constants — the paper loads them from
	// constant memory.
	Template [16]uint32
	// Target is the digest to match, as little-endian state words.
	Target [4]uint32
	// Reversal inverts the last 15 steps at build time (they never read
	// message word 0) so each candidate runs only 49 forward steps.
	Reversal bool
	// EarlyExit emits an exit comparison as soon as each component of the
	// meet state is produced instead of one block comparison at the end,
	// saving about three steps per mismatching candidate.
	EarlyExit bool
	// Interleave builds the two-way ILP variant: the program hashes two
	// candidates (inputs 0 and 1) with instruction-level interleaving.
	// Section V recommends it on Fermi, whose bottleneck is the
	// addition/logical throughput reachable only via dual issue.
	Interleave bool
}

// name derives the program name from the configuration.
func (cfg MD5Config) name() string {
	n := "md5"
	if cfg.Reversal {
		n += "+rev"
	}
	if cfg.EarlyExit {
		n += "+exit"
	}
	if cfg.Interleave {
		n += "+ilp2"
	}
	return n
}

// Streams returns the number of candidates tested per program run.
func (cfg MD5Config) Streams() int {
	if cfg.Interleave {
		return 2
	}
	return 1
}

type md5Regs struct{ a, b, c, d Val }

// BuildMD5 assembles the MD5 search kernel program. A lane survives (all
// exit checks pass) exactly when one of its input words completes a key
// hashing to the target.
func BuildMD5(cfg MD5Config) *Program {
	streams := cfg.Streams()
	b := NewBuilder(cfg.name(), streams)
	st := make([]md5Regs, streams)
	iv := md5x.IV()
	for k := range st {
		st[k] = md5Regs{a: Imm(iv[0]), b: Imm(iv[1]), c: Imm(iv[2]), d: Imm(iv[3])}
	}

	steps := 64
	var rev [4]uint32
	if cfg.Reversal {
		steps = md5x.ForwardSteps // 49
		rc := md5x.NewReverseContext(cfg.Target, &cfg.Template)
		rev = rc.Reversed()
	}

	for i := 0; i < steps; i++ {
		emitMD5Step(b, st, i, cfg)
		if cfg.Reversal && cfg.EarlyExit {
			// Steps 45..48 pin, in order, the A, D, C and B components of
			// the state after step 48 (the register file only shifts in
			// between).
			switch i {
			case 45:
				exitAll(b, st, func(r md5Regs) Val { return r.b }, rev[0])
			case 46:
				exitAll(b, st, func(r md5Regs) Val { return r.b }, rev[3])
			case 47:
				exitAll(b, st, func(r md5Regs) Val { return r.b }, rev[2])
			case 48:
				exitAll(b, st, func(r md5Regs) Val { return r.b }, rev[1])
			}
		}
		if !cfg.Reversal && cfg.EarlyExit {
			// Steps 60..63 pin the A, D, C, B components of the final
			// state; the feed-forward addition folds into the reference
			// constants.
			switch i {
			case 60:
				exitAll(b, st, func(r md5Regs) Val { return r.b }, cfg.Target[0]-iv[0])
			case 61:
				exitAll(b, st, func(r md5Regs) Val { return r.b }, cfg.Target[3]-iv[3])
			case 62:
				exitAll(b, st, func(r md5Regs) Val { return r.b }, cfg.Target[2]-iv[2])
			case 63:
				exitAll(b, st, func(r md5Regs) Val { return r.b }, cfg.Target[1]-iv[1])
			}
		}
	}

	if !cfg.EarlyExit {
		if cfg.Reversal {
			for k := range st {
				b.ExitNE(st[k].a, Imm(rev[0]))
				b.ExitNE(st[k].b, Imm(rev[1]))
				b.ExitNE(st[k].c, Imm(rev[2]))
				b.ExitNE(st[k].d, Imm(rev[3]))
			}
		} else {
			// The fully naive tail: feed-forward additions then compare.
			for k := range st {
				fa := b.Add(st[k].a, Imm(iv[0]))
				fb := b.Add(st[k].b, Imm(iv[1]))
				fc := b.Add(st[k].c, Imm(iv[2]))
				fd := b.Add(st[k].d, Imm(iv[3]))
				b.ExitNE(fa, Imm(cfg.Target[0]))
				b.ExitNE(fb, Imm(cfg.Target[1]))
				b.ExitNE(fc, Imm(cfg.Target[2]))
				b.ExitNE(fd, Imm(cfg.Target[3]))
			}
		}
	}
	return b.Build()
}

// emitMD5Step emits one MD5 step for every stream, interleaving the
// streams' instructions so that adjacent instructions are independent
// (that is what buys dual-issue slots on cc2.1/3.0).
func emitMD5Step(b *Builder, st []md5Regs, i int, cfg MD5Config) {
	g := md5x.MsgIndex(i)
	s := uint8(md5x.Shift(i))
	tc := md5TConst(i)

	f := make([]Val, len(st))
	mapStreams(st, func(k int) {
		f[k] = emitMD5Round(b, i, st[k])
	})
	t1 := make([]Val, len(st))
	mapStreams(st, func(k int) { t1[k] = b.Add(st[k].a, f[k]) })
	t2 := make([]Val, len(st))
	mapStreams(st, func(k int) {
		var m Val
		if g == 0 {
			m = b.Input(k)
		} else {
			m = Imm(cfg.Template[g])
		}
		t2[k] = b.Add(t1[k], m)
	})
	t3 := make([]Val, len(st))
	mapStreams(st, func(k int) { t3[k] = b.Add(t2[k], tc) })
	rot := make([]Val, len(st))
	mapStreams(st, func(k int) { rot[k] = b.Rotl(t3[k], s) })
	mapStreams(st, func(k int) {
		nb := b.Add(st[k].b, rot[k])
		st[k] = md5Regs{a: st[k].d, b: nb, c: st[k].b, d: st[k].c}
	})
}

// emitMD5Round emits the round function of step i on stream registers.
func emitMD5Round(b *Builder, i int, r md5Regs) Val {
	switch {
	case i < 16: // F = (b & c) | (~b & d)
		return b.Or(b.And(r.b, r.c), b.And(b.Not(r.b), r.d))
	case i < 32: // G = (b & d) | (c & ~d)
		return b.Or(b.And(r.b, r.d), b.And(r.c, b.Not(r.d)))
	case i < 48: // H = b ^ c ^ d
		return b.Xor(b.Xor(r.b, r.c), r.d)
	default: // I = c ^ (b | ~d)
		return b.Xor(r.c, b.Or(r.b, b.Not(r.d)))
	}
}

func md5TConst(i int) Val { return Imm(md5x.T[i]) }

// mapStreams runs f per stream. With one stream it is a plain call; with
// two it yields the per-instruction interleaving.
func mapStreams(st []md5Regs, f func(k int)) {
	for k := range st {
		f(k)
	}
}

func exitAll(b *Builder, st []md5Regs, pick func(md5Regs) Val, want uint32) {
	for k := range st {
		b.ExitNE(pick(st[k]), Imm(want))
	}
}

// BuildMD5Hash builds a pure hashing program (no target): input word 0
// replaces template word 0, outputs are the four digest state words. Used
// to differential-test the interpreter against the scratch MD5.
func BuildMD5Hash(template [16]uint32) *Program {
	b, digest := buildMD5Digest("md5-hash", template)
	b.Output(digest...)
	return b.Build()
}

// buildMD5Digest emits the full 64-step hash plus feed-forward and returns
// the builder with the four digest state words still live, so callers can
// append a tail (outputs, the multi-target Bloom pre-screen).
func buildMD5Digest(name string, template [16]uint32) (*Builder, []Val) {
	b := NewBuilder(name, 1)
	iv := md5x.IV()
	st := []md5Regs{{a: Imm(iv[0]), b: Imm(iv[1]), c: Imm(iv[2]), d: Imm(iv[3])}}
	cfg := MD5Config{Template: template}
	for i := 0; i < 64; i++ {
		emitMD5Step(b, st, i, cfg)
	}
	fa := b.Add(st[0].a, Imm(iv[0]))
	fb := b.Add(st[0].b, Imm(iv[1]))
	fc := b.Add(st[0].c, Imm(iv[2]))
	fd := b.Add(st[0].d, Imm(iv[3]))
	return b, []Val{fa, fb, fc, fd}
}
