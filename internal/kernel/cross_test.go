package kernel

import (
	"bytes"
	"testing"

	"keysearch/internal/hash/md5x"
	"keysearch/internal/hash/sha1x"
)

// These cross-kernel tests pin the IR executor to the native Go search:
// over the same word-0 intervals the reference executor (kernel.Match on
// the built search program) and the hash packages' Searchers — the code
// path the CPU workers run — must agree on find/no-find and on the exact
// set of matching candidates. Word 0 of the packed block varies, so the
// interval enumerates keys whose first four bytes change while the
// suffix, padding and length stay baked into the program.

// crossScan walks [start, start+n) and returns the candidates each side
// accepted. native tests the unpacked key bytes, ir tests the raw word.
func crossScan(t *testing.T, start uint32, n int,
	native func(key []byte) bool, ir func(w uint32) bool,
	template [16]uint32) (nativeFinds, irFinds []uint32) {
	t.Helper()
	for i := 0; i < n; i++ {
		w := start + uint32(i)
		b := template
		b[0] = w
		key := md5x.UnpackKey(nil, &b)
		if native(key) {
			nativeFinds = append(nativeFinds, w)
		}
		if ir(w) {
			irFinds = append(irFinds, w)
		}
	}
	return nativeFinds, irFinds
}

func TestCrossExecutorMD5(t *testing.T) {
	const planted = "Key4SUFF"
	block, target := md5Template(t, planted)
	s := md5x.NewSearcherWords(target)
	for _, cfg := range []MD5Config{
		{Template: block, Target: target},
		{Template: block, Target: target, Reversal: true, EarlyExit: true},
	} {
		prog := BuildMD5(cfg)
		for _, iv := range []struct {
			name  string
			start uint32
			n     int
			find  bool
		}{
			{"contains-planted", block[0] - 500, 1000, true},
			{"above-planted", block[0] + 1000, 1000, false},
			{"zero-origin", 0, 1000, false},
		} {
			t.Run(prog.Name+"/"+iv.name, func(t *testing.T) {
				nat, ir := crossScan(t, iv.start, iv.n,
					func(key []byte) bool { return s.Test(key) },
					func(w uint32) bool { return Match(prog, w) },
					block)
				if len(nat) != len(ir) {
					t.Fatalf("native found %d, IR found %d", len(nat), len(ir))
				}
				for i := range nat {
					if nat[i] != ir[i] {
						t.Fatalf("match sets differ: native %08x vs IR %08x", nat[i], ir[i])
					}
				}
				if found := len(nat) > 0; found != iv.find {
					t.Fatalf("interval find = %v, want %v", found, iv.find)
				}
				if iv.find {
					b := block
					b[0] = nat[0]
					if key := md5x.UnpackKey(nil, &b); !bytes.Equal(key, []byte(planted)) {
						t.Fatalf("found key %q, want %q", key, planted)
					}
				}
			})
		}
	}
}

func TestCrossExecutorSHA1(t *testing.T) {
	const planted = "Key4SUFF"
	block, target := sha1Template(t, planted)
	s := sha1x.NewSearcherWords(target)
	for _, cfg := range []SHA1Config{
		{Template: block, Target: target},
		{Template: block, Target: target, EarlyExit: true},
	} {
		prog := BuildSHA1(cfg)
		for _, iv := range []struct {
			name  string
			start uint32
			n     int
			find  bool
		}{
			{"contains-planted", block[0] - 500, 1000, true},
			{"above-planted", block[0] + 1000, 1000, false},
		} {
			t.Run(prog.Name+"/"+iv.name, func(t *testing.T) {
				// SHA1 packs big-endian, so unpack with sha1x.
				var nat, ir []uint32
				for i := 0; i < iv.n; i++ {
					w := iv.start + uint32(i)
					b := block
					b[0] = w
					if s.Test(sha1x.UnpackKey(nil, &b)) {
						nat = append(nat, w)
					}
					if Match(prog, w) {
						ir = append(ir, w)
					}
				}
				if len(nat) != len(ir) {
					t.Fatalf("native found %d, IR found %d", len(nat), len(ir))
				}
				for i := range nat {
					if nat[i] != ir[i] {
						t.Fatalf("match sets differ: native %08x vs IR %08x", nat[i], ir[i])
					}
				}
				if found := len(nat) > 0; found != iv.find {
					t.Fatalf("interval find = %v, want %v", found, iv.find)
				}
			})
		}
	}
}
