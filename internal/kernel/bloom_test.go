package kernel_test

// External test package: the cross-architecture differential needs
// internal/compile (which imports kernel) and the simulator, so it cannot
// live inside package kernel.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"keysearch/internal/analysis/ircheck"
	"keysearch/internal/arch"
	"keysearch/internal/compile"
	"keysearch/internal/gpu"
	"keysearch/internal/hash/md5x"
	"keysearch/internal/kernel"
)

// bloomFixture builds a template, a set of planted word-0 values, their
// digest states, and the filter over them.
type bloomFixture struct {
	block   [16]uint32
	planted []uint32 // word-0 values whose digests are in the corpus
	states  [][]uint32
	spec    *kernel.BloomSpec
}

func newBloomFixture(t *testing.T, fpRate float64, extraNoise int) *bloomFixture {
	t.Helper()
	var block [16]uint32
	if err := md5x.PackKey([]byte("Key4SUFF"), &block); err != nil {
		t.Fatal(err)
	}
	f := &bloomFixture{block: block}
	// Plant digests of specific word-0 candidates around the scan window.
	for _, w := range []uint32{block[0], block[0] + 17, block[0] + 399, block[0] - 123} {
		f.planted = append(f.planted, w)
		f.states = append(f.states, f.digest(w))
	}
	// Noise targets far outside any scanned interval, to give the corpus
	// realistic cardinality.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < extraNoise; i++ {
		f.states = append(f.states, f.digest(0xf0000000+rng.Uint32()%0x0fffffff))
	}
	spec, err := kernel.NewBloomSpec(f.states, fpRate)
	if err != nil {
		t.Fatal(err)
	}
	f.spec = spec
	return f
}

func (f *bloomFixture) digest(w0 uint32) []uint32 {
	b := f.block
	b[0] = w0
	d := md5x.SumPacked(&b)
	return []uint32{d[0], d[1], d[2], d[3]}
}

// isTarget is the linear-scan oracle: does w0's digest appear verbatim in
// the corpus?
func (f *bloomFixture) isTarget(w0 uint32) bool {
	d := f.digest(w0)
	for _, st := range f.states {
		if st[0] == d[0] && st[1] == d[1] && st[2] == d[2] && st[3] == d[3] {
			return true
		}
	}
	return false
}

// confirm exact-checks a surviving lane's digest outputs against the corpus
// — the host-side confirm stage of the two-stage test.
func (f *bloomFixture) confirm(out []uint32) bool {
	for _, st := range f.states {
		if st[0] == out[0] && st[1] == out[1] && st[2] == out[2] && st[3] == out[3] {
			return true
		}
	}
	return false
}

func TestBloomSpecHostSemantics(t *testing.T) {
	f := newBloomFixture(t, 1e-3, 500)
	// No false negatives, ever.
	for i, st := range f.states {
		if !f.spec.MayContain(st) {
			t.Fatalf("filter misses inserted state %d", i)
		}
	}
	// Geometry: power-of-two bank, probe count in range.
	if n := len(f.spec.Words); n&(n-1) != 0 {
		t.Fatalf("bank length %d not a power of two", n)
	}
	if f.spec.K < 1 || f.spec.K > kernel.MaxBloomProbes {
		t.Fatalf("probe count %d out of range", f.spec.K)
	}
	// Error paths.
	if _, err := kernel.NewBloomSpec(nil, 1e-3); err == nil {
		t.Error("empty corpus: want error")
	}
	if _, err := kernel.NewBloomSpec([][]uint32{{1, 2}}, 0); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := kernel.NewBloomSpec([][]uint32{{1, 2}, {1}}, 1e-3); err == nil {
		t.Error("ragged states: want error")
	}
}

// TestBuildMD5BloomDifferential is the IR half of the differential tier:
// the source program and its compilation for every modeled architecture
// must produce, over a scan interval, exactly the hit set of the
// linear-scan oracle once survivors are confirmed — and must never lose a
// planted target to the filter.
func TestBuildMD5BloomDifferential(t *testing.T) {
	for _, fpRate := range []float64{1e-3, 0.5} {
		f := newBloomFixture(t, fpRate, 500)
		src := kernel.BuildMD5Bloom(f.block, f.spec)
		if err := ircheck.Verify(src, ircheck.Source()); err != nil {
			t.Fatal(err)
		}

		// The oracle hit set over the scan window.
		start := f.block[0] - 500
		const n = 1200
		var want []uint32
		for i := 0; i < n; i++ {
			if f.isTarget(start + uint32(i)) {
				want = append(want, start+uint32(i))
			}
		}
		if len(want) < 4 {
			t.Fatalf("scan window holds %d planted targets, want >= 4", len(want))
		}

		// progs holds the source program plus one compilation per arch.
		progs := map[string]*kernel.Program{"source": src}
		for _, cc := range arch.All {
			c, err := compile.CompileChecked(src, compile.DefaultOptions(cc))
			if err != nil {
				t.Fatalf("cc %v: %v", cc, err)
			}
			progs["cc"+cc.String()] = c.Program
		}

		for name, prog := range progs {
			t.Run(fmt.Sprintf("fpr=%v/%s", fpRate, name), func(t *testing.T) {
				var got []uint32
				filterPasses := 0
				for i := 0; i < n; i++ {
					w := start + uint32(i)
					out, survived, err := kernel.Run(prog, []uint32{w})
					if err != nil {
						t.Fatal(err)
					}
					if !survived {
						continue
					}
					filterPasses++
					if f.confirm(out) {
						got = append(got, w)
					}
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("hit set %v differs from linear scan %v", got, want)
				}
				if fpRate == 0.5 && filterPasses == len(got) {
					t.Log("adversarial rate produced no filter false positives in this window")
				}
			})
		}
	}
}

// TestWarpBloomMatchesScalar runs the compiled multi-target kernel through
// the warp interpreter and checks lane survivors against the scalar
// reference executor lane by lane.
func TestWarpBloomMatchesScalar(t *testing.T) {
	f := newBloomFixture(t, 1e-3, 200)
	src := kernel.BuildMD5Bloom(f.block, f.spec)
	c, err := compile.CompileChecked(src, compile.DefaultOptions(arch.CC30))
	if err != nil {
		t.Fatal(err)
	}
	interp := gpu.NewWarpInterp()
	start := f.block[0] - 32
	for warp := 0; warp < 20; warp++ {
		var lanes [arch.WarpSize]uint32
		for l := 0; l < arch.WarpSize; l++ {
			lanes[l] = start + uint32(warp*arch.WarpSize+l)
		}
		res, err := interp.Run(c.Program, [][arch.WarpSize]uint32{lanes}, gpu.FullMask)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < arch.WarpSize; l++ {
			_, scalar, err := kernel.Run(c.Program, []uint32{lanes[l]})
			if err != nil {
				t.Fatal(err)
			}
			if res.Survivors.Lane(l) != scalar {
				t.Fatalf("warp %d lane %d: warp says %v, scalar says %v", warp, l, res.Survivors.Lane(l), scalar)
			}
		}
	}
}

// TestBloomSimulatesOnAllArches holds the cycle simulator to the new
// ClassLoad issue path: the multi-target program must converge and issue
// its load instructions on every modeled architecture.
func TestBloomSimulatesOnAllArches(t *testing.T) {
	f := newBloomFixture(t, 1e-3, 100)
	src := kernel.BuildMD5Bloom(f.block, f.spec)
	for _, cc := range arch.All {
		c, err := compile.CompileChecked(src, compile.DefaultOptions(cc))
		if err != nil {
			t.Fatal(err)
		}
		if c.Counts.Loads() != f.spec.K {
			t.Fatalf("cc %v: %d loads survived compilation, want %d", cc, c.Counts.Loads(), f.spec.K)
		}
		res, err := gpu.SimulateMP(c.Program, cc, 8, 2)
		if err != nil {
			t.Fatalf("cc %v: %v", cc, err)
		}
		if res.Completed != 16 {
			t.Fatalf("cc %v: completed %d runs, want 16", cc, res.Completed)
		}
	}
}

// TestBloomBankRule pins the ircheck bank-integrity rule: probes without a
// bank, or with a non-power-of-two bank, are violations at every stage.
func TestBloomBankRule(t *testing.T) {
	build := func(words []uint32) *kernel.Program {
		b := kernel.NewBuilder("bloom-rule", 1)
		bit := b.BloomBit(b.Input(0))
		b.ExitNE(bit, b.Const(1))
		b.SetBloom(words)
		return b.Build()
	}
	hasRule := func(p *kernel.Program, rule ircheck.Rule) bool {
		for _, v := range ircheck.Check(p, ircheck.Source()) {
			if v.Rule == rule {
				return true
			}
		}
		return false
	}
	if !hasRule(build(nil), ircheck.RuleBloomBank) {
		t.Error("missing bank not flagged")
	}
	if !hasRule(build(make([]uint32, 3)), ircheck.RuleBloomBank) {
		t.Error("non-power-of-two bank not flagged")
	}
	if hasRule(build(make([]uint32, 4)), ircheck.RuleBloomBank) {
		t.Error("valid bank flagged")
	}
	// The op itself is legal on every architecture (constant memory is a
	// cc1.x-era facility); only the bank shape can be wrong.
	for _, cc := range arch.All {
		p := build(make([]uint32, 4))
		for _, v := range ircheck.Check(p, ircheck.Machine(cc)) {
			if v.Rule == ircheck.RuleArch {
				t.Errorf("cc %v: LDC.BLOOM arch-gated: %v", cc, v)
			}
		}
	}
}
