package kernel

import "keysearch/internal/hash/sha1x"

// SHA1Config describes the SHA1 search kernel to build. SHA1's message
// schedule expands word 0 into the late rounds, so there is no 15-step
// reversal; the transferable optimizations are the hoisted feed-forward
// (compare against target−IV) and the early-exit checks over the last five
// steps. The paper notes SHA1's lower addition/logical-to-shift ratio
// (≈1.53), which this builder reproduces structurally via the per-step
// rotl5/rotl30 and the schedule's rotl1.
type SHA1Config struct {
	// Template is the packed single-block message (big-endian words);
	// word 0 is the per-thread input.
	Template [16]uint32
	// Target is the digest to match, as big-endian state words.
	Target [5]uint32
	// EarlyExit emits exit checks at steps 75..79 instead of a single
	// comparison after the feed-forward.
	EarlyExit bool
	// Interleave builds the two-way ILP variant.
	Interleave bool
}

func (cfg SHA1Config) name() string {
	n := "sha1"
	if cfg.EarlyExit {
		n += "+exit"
	}
	if cfg.Interleave {
		n += "+ilp2"
	}
	return n
}

// Streams returns the number of candidates tested per program run.
func (cfg SHA1Config) Streams() int {
	if cfg.Interleave {
		return 2
	}
	return 1
}

type sha1Regs struct {
	a, b, c, d, e Val
	w             [80]Val
	nextW         int
}

// BuildSHA1 assembles the SHA1 search kernel program.
func BuildSHA1(cfg SHA1Config) *Program {
	streams := cfg.Streams()
	b := NewBuilder(cfg.name(), streams)
	iv := sha1x.IV()
	st := make([]*sha1Regs, streams)
	for k := range st {
		r := &sha1Regs{a: Imm(iv[0]), b: Imm(iv[1]), c: Imm(iv[2]), d: Imm(iv[3]), e: Imm(iv[4])}
		r.w[0] = b.Input(k)
		for i := 1; i < 16; i++ {
			r.w[i] = Imm(cfg.Template[i])
		}
		st[k] = r
	}

	var mid [5]uint32
	for i := range mid {
		mid[i] = cfg.Target[i] - iv[i]
	}
	rotr30 := func(x uint32) uint32 { return x>>30 | x<<2 }

	for i := 0; i < 80; i++ {
		emitSHA1Step(b, st, i)
		if cfg.EarlyExit {
			// Steps 75..79 pin, in order, the E, D, C, B, A components of
			// the final state (see sha1x.Searcher for the register
			// shifting argument).
			switch i {
			case 75:
				for k := range st {
					b.ExitNE(st[k].a, Imm(rotr30(mid[4])))
				}
			case 76:
				for k := range st {
					b.ExitNE(st[k].a, Imm(rotr30(mid[3])))
				}
			case 77:
				for k := range st {
					b.ExitNE(st[k].a, Imm(rotr30(mid[2])))
				}
			case 78:
				for k := range st {
					b.ExitNE(st[k].a, Imm(mid[1]))
				}
			case 79:
				for k := range st {
					b.ExitNE(st[k].a, Imm(mid[0]))
				}
			}
		}
	}
	if !cfg.EarlyExit {
		for k := range st {
			b.ExitNE(st[k].a, Imm(mid[0]))
			b.ExitNE(st[k].b, Imm(mid[1]))
			b.ExitNE(st[k].c, Imm(mid[2]))
			b.ExitNE(st[k].d, Imm(mid[3]))
			b.ExitNE(st[k].e, Imm(mid[4]))
		}
	}
	return b.Build()
}

// emitSHA1Step emits one SHA1 step (with on-demand schedule expansion) for
// every stream, interleaving stream instructions.
func emitSHA1Step(b *Builder, st []*sha1Regs, i int) {
	// Schedule expansion W[i] = rotl1(W[i-3]^W[i-8]^W[i-14]^W[i-16]).
	if i >= 16 {
		x1 := make([]Val, len(st))
		for k, r := range st {
			x1[k] = b.Xor(r.w[i-3], r.w[i-8])
		}
		x2 := make([]Val, len(st))
		for k, r := range st {
			x2[k] = b.Xor(x1[k], r.w[i-14])
		}
		x3 := make([]Val, len(st))
		for k, r := range st {
			x3[k] = b.Xor(x2[k], r.w[i-16])
		}
		for k, r := range st {
			r.w[i] = b.Rotl(x3[k], 1)
		}
	}

	f := make([]Val, len(st))
	for k, r := range st {
		f[k] = emitSHA1Round(b, i, r)
	}
	r5 := make([]Val, len(st))
	for k, r := range st {
		r5[k] = b.Rotl(r.a, 5)
	}
	t1 := make([]Val, len(st))
	for k := range st {
		t1[k] = b.Add(r5[k], f[k])
	}
	t2 := make([]Val, len(st))
	for k, r := range st {
		t2[k] = b.Add(t1[k], r.e)
	}
	t3 := make([]Val, len(st))
	for k, r := range st {
		t3[k] = b.Add(t2[k], r.w[i])
	}
	t4 := make([]Val, len(st))
	for k := range st {
		t4[k] = b.Add(t3[k], Imm(sha1x.K[i/20]))
	}
	for k, r := range st {
		c30 := b.Rotl(r.b, 30)
		st[k].a, st[k].b, st[k].c, st[k].d, st[k].e = t4[k], r.a, c30, r.c, r.d
	}
}

func emitSHA1Round(b *Builder, i int, r *sha1Regs) Val {
	switch {
	case i < 20: // Ch = (b & c) | (~b & d)
		return b.Or(b.And(r.b, r.c), b.And(b.Not(r.b), r.d))
	case i < 40, i >= 60: // Parity = b ^ c ^ d
		return b.Xor(b.Xor(r.b, r.c), r.d)
	default: // Maj = (b & c) | (b & d) | (c & d)
		return b.Or(b.Or(b.And(r.b, r.c), b.And(r.b, r.d)), b.And(r.c, r.d))
	}
}

// BuildSHA1Hash builds a pure hashing program: input word 0 replaces
// template word 0, outputs are the five digest state words.
func BuildSHA1Hash(template [16]uint32) *Program {
	b := NewBuilder("sha1-hash", 1)
	iv := sha1x.IV()
	r := &sha1Regs{a: Imm(iv[0]), b: Imm(iv[1]), c: Imm(iv[2]), d: Imm(iv[3]), e: Imm(iv[4])}
	r.w[0] = b.Input(0)
	for i := 1; i < 16; i++ {
		r.w[i] = Imm(template[i])
	}
	st := []*sha1Regs{r}
	for i := 0; i < 80; i++ {
		emitSHA1Step(b, st, i)
	}
	fa := b.Add(st[0].a, Imm(iv[0]))
	fb := b.Add(st[0].b, Imm(iv[1]))
	fc := b.Add(st[0].c, Imm(iv[2]))
	fd := b.Add(st[0].d, Imm(iv[3]))
	fe := b.Add(st[0].e, Imm(iv[4]))
	b.Output(fa, fb, fc, fd, fe)
	return b.Build()
}
