package kernel

import "fmt"

// Run executes the program for a single lane with the given input words.
// It returns the values of the output registers and whether the lane
// survived every exit check (i.e. the candidate matched). Run handles both
// source-level programs (pseudo rotations evaluate directly) and lowered
// machine programs, which makes it the reference semantics the compile
// passes are differential-tested against.
func Run(p *Program, inputs []uint32) (outputs []uint32, survived bool, err error) {
	if len(inputs) != p.NumInputs {
		return nil, false, fmt.Errorf("kernel: program %s wants %d inputs, got %d", p.Name, p.NumInputs, len(inputs))
	}
	regs := make([]uint32, p.NumRegs)
	copy(regs, inputs)
	read := func(o Operand) uint32 {
		if o.IsImm {
			return o.Imm
		}
		return regs[o.Reg]
	}
	survived = true
	for _, in := range p.Instrs {
		switch in.Op {
		case OpNop:
		case OpExitNE:
			if read(in.A) != read(in.B) {
				survived = false
				// A real lane stops here; keep semantics identical.
				outputs = collectOutputs(p, regs)
				return outputs, false, nil
			}
		case OpBloomBit:
			// Bank lookup reads program state, not just operands.
			regs[in.Dst] = p.BloomBit(read(in.A))
		default:
			regs[in.Dst] = Eval(in.Op, read(in.A), read(in.B), in.Sh)
		}
	}
	return collectOutputs(p, regs), survived, nil
}

func collectOutputs(p *Program, regs []uint32) []uint32 {
	if len(p.Outputs) == 0 {
		return nil
	}
	out := make([]uint32, len(p.Outputs))
	for i, r := range p.Outputs {
		out[i] = regs[r]
	}
	return out
}

// Match is a convenience wrapper for search programs: it reports whether
// the lane with the given inputs survives all exit checks.
func Match(p *Program, inputs ...uint32) bool {
	_, ok, err := Run(p, inputs)
	return err == nil && ok
}
