package keyspace

// Order selects one of the two enumeration orders defined in the paper.
//
// SuffixMajor is the mapping of equation (1) (Figure 1 as printed): the
// *last* character of the key is the least-significant digit and therefore
// changes fastest:
//
//	[0,1,2,...] -> [ε, a, b, c, aa, ab, ac, ba, bb, ...]
//
// PrefixMajor is the mapping of equation (4), obtained by appending instead
// of prepending in Figure 1: the *first* character is the least-significant
// digit:
//
//	[0,1,2,...] -> [ε, a, b, c, aa, ba, ca, ab, bb, ...]
//
// PrefixMajor is the order required by the GPU reversal optimization of
// Section V: a thread iterating over consecutive identifiers only mutates
// the first 4-byte block of the key, so the 15 reversed MD5 steps (which do
// not read that block) can be hoisted out of the loop.
type Order int

const (
	SuffixMajor Order = iota // equation (1): last character changes fastest
	PrefixMajor              // equation (4): first character changes fastest
)

// String returns the name of the order.
func (o Order) String() string {
	switch o {
	case SuffixMajor:
		return "suffix-major"
	case PrefixMajor:
		return "prefix-major"
	default:
		return "invalid-order"
	}
}

// Valid reports whether o is one of the defined orders.
func (o Order) Valid() bool { return o == SuffixMajor || o == PrefixMajor }
