package keyspace

import (
	"fmt"
	"math/big"
)

// Interval is a half-open range [Start, End) of dense key identifiers.
// Intervals are the unit of work the dispatcher of Section III scatters to
// computing nodes: only two integers travel on the wire, and the receiving
// node regenerates its sub-space locally via f(Start) and next.
type Interval struct {
	Start *big.Int
	End   *big.Int
}

// NewInterval builds an interval from int64 bounds (convenience for tests
// and small spaces).
func NewInterval(start, end int64) Interval {
	return Interval{Start: big.NewInt(start), End: big.NewInt(end)}
}

// Len returns the number of identifiers in the interval (zero when empty or
// inverted).
func (iv Interval) Len() *big.Int {
	n := new(big.Int).Sub(iv.End, iv.Start)
	if n.Sign() < 0 {
		n.SetInt64(0)
	}
	return n
}

// Len64 returns the interval length and true when it fits in a uint64.
func (iv Interval) Len64() (uint64, bool) {
	n := iv.Len()
	if !n.IsUint64() {
		return 0, false
	}
	return n.Uint64(), true
}

// Empty reports whether the interval contains no identifiers.
func (iv Interval) Empty() bool { return iv.Start.Cmp(iv.End) >= 0 }

// Contains reports whether id lies in the interval.
func (iv Interval) Contains(id *big.Int) bool {
	return id.Cmp(iv.Start) >= 0 && id.Cmp(iv.End) < 0
}

// Clone returns a deep copy of the interval.
func (iv Interval) Clone() Interval {
	return Interval{Start: new(big.Int).Set(iv.Start), End: new(big.Int).Set(iv.End)}
}

// Take splits the interval into its first n identifiers and the rest.
// When n is at least the interval length, head is the whole interval and
// tail is empty.
func (iv Interval) Take(n *big.Int) (head, tail Interval) {
	if n.Sign() <= 0 {
		return Interval{Start: new(big.Int).Set(iv.Start), End: new(big.Int).Set(iv.Start)}, iv.Clone()
	}
	mid := new(big.Int).Add(iv.Start, n)
	if mid.Cmp(iv.End) > 0 {
		mid.Set(iv.End)
	}
	head = Interval{Start: new(big.Int).Set(iv.Start), End: new(big.Int).Set(mid)}
	tail = Interval{Start: mid, End: new(big.Int).Set(iv.End)}
	return head, tail
}

// SplitN partitions the interval into n contiguous sub-intervals whose sizes
// differ by at most one. The concatenation of the results is exactly iv.
func (iv Interval) SplitN(n int) []Interval {
	if n <= 0 {
		return nil
	}
	total := iv.Len()
	q, r := new(big.Int).QuoRem(total, big.NewInt(int64(n)), new(big.Int))
	out := make([]Interval, 0, n)
	cur := new(big.Int).Set(iv.Start)
	for i := 0; i < n; i++ {
		size := new(big.Int).Set(q)
		if int64(i) < r.Int64() {
			size.Add(size, oneBig)
		}
		next := new(big.Int).Add(cur, size)
		out = append(out, Interval{Start: new(big.Int).Set(cur), End: next})
		cur = new(big.Int).Set(next)
	}
	return out
}

// SplitWeighted partitions the interval into len(weights) contiguous
// sub-intervals with sizes proportional to the weights, which is the
// paper's balancing rule N_j = N_max * (X_j / X_max) expressed over
// arbitrary positive weights. Rounding residue is assigned to the heaviest
// node. Zero-weight entries receive empty intervals. The concatenation of
// the results is exactly iv.
func (iv Interval) SplitWeighted(weights []float64) ([]Interval, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("keyspace: no weights")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("keyspace: negative weight %v at %d", w, i)
		}
		sum += w
	}
	if sum == 0 {
		return nil, fmt.Errorf("keyspace: all weights zero")
	}
	// Scale the float weights to integers and place each boundary at
	// floor(total * cumulativeWeight / weightSum), computed exactly with
	// big integers. Each part's size then deviates from the ideal
	// proportional share by strictly less than one identifier, and the
	// parts tile the interval exactly — even for 62^20-sized spaces.
	const scale = 1 << 20
	intw := make([]*big.Int, len(weights))
	wsum := new(big.Int)
	for i, w := range weights {
		intw[i] = new(big.Int).SetUint64(uint64(w * scale))
		wsum.Add(wsum, intw[i])
	}
	if wsum.Sign() == 0 {
		// All weights rounded to zero; fall back to equal shares.
		for i := range intw {
			intw[i].SetInt64(1)
		}
		wsum.SetInt64(int64(len(intw)))
	}
	total := iv.Len()
	out := make([]Interval, len(weights))
	cum := new(big.Int)
	prev := new(big.Int).Set(iv.Start)
	for i := range weights {
		cum.Add(cum, intw[i])
		bound := new(big.Int).Mul(total, cum)
		bound.Quo(bound, wsum)
		bound.Add(bound, iv.Start)
		out[i] = Interval{Start: prev, End: bound}
		prev = new(big.Int).Set(bound)
	}
	if prev.Cmp(iv.End) != 0 {
		return nil, fmt.Errorf("keyspace: internal split error: covered %v of %v", prev, iv.End)
	}
	return out, nil
}

// String formats the interval.
func (iv Interval) String() string {
	return fmt.Sprintf("[%v, %v)", iv.Start, iv.End)
}
