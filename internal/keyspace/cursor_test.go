package keyspace

import (
	"math/big"
	"testing"
)

// TestCursorMatchesF verifies the defining property of the next operator
// (Figure 2): next(f(i)) == f(i+1), for both enumeration orders.
func TestCursorMatchesF(t *testing.T) {
	for _, order := range []Order{SuffixMajor, PrefixMajor} {
		s := MustNew(abc, 0, 4, order)
		c, err := NewCursor(s, big.NewInt(0))
		if err != nil {
			t.Fatal(err)
		}
		size := s.Size().Int64()
		for i := int64(0); i < size; i++ {
			want, err := s.Key(big.NewInt(i))
			if err != nil {
				t.Fatal(err)
			}
			if string(c.Key()) != string(want) {
				t.Fatalf("%v: cursor at %d = %q, want %q", order, i, c.Key(), want)
			}
			advanced := c.Next()
			if advanced != (i < size-1) {
				t.Fatalf("%v: Next at %d = %v", order, i, advanced)
			}
		}
		if !c.Exhausted() {
			t.Errorf("%v: cursor should be exhausted", order)
		}
		if c.Next() {
			t.Errorf("%v: Next after exhaustion should stay false", order)
		}
	}
}

func TestCursorMinLen(t *testing.T) {
	s := MustNew(abc, 2, 2, SuffixMajor)
	c, err := NewCursor(s, big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	for {
		seen = append(seen, string(c.Key()))
		if !c.Next() {
			break
		}
	}
	if len(seen) != 9 {
		t.Fatalf("walked %d keys, want 9: %v", len(seen), seen)
	}
	if seen[0] != "aa" || seen[8] != "cc" {
		t.Errorf("walk = %v", seen)
	}
}

func TestCursorAt(t *testing.T) {
	s := MustNew(abc, 1, 3, SuffixMajor)
	c, err := CursorAt(s, []byte("ac"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Next() {
		t.Fatal("Next failed")
	}
	if string(c.Key()) != "ba" {
		t.Errorf("next(ac) = %q, want \"ba\"", c.Key())
	}
	if _, err := CursorAt(s, []byte("zz")); err == nil {
		t.Error("CursorAt foreign key: want error")
	}
}

func TestCursorSkip(t *testing.T) {
	s := MustNew(abc, 0, 3, SuffixMajor)
	c, err := NewCursor(s, big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Skip(big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if n.Int64() != 5 {
		t.Fatalf("Skip = %v, want 5", n)
	}
	if string(c.Key()) != "ab" {
		t.Errorf("after skip 5: %q, want \"ab\"", c.Key())
	}
	// Skipping past the end clamps and exhausts.
	n, err = c.Skip(big.NewInt(1000))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Exhausted() {
		t.Error("cursor should be exhausted after overshoot")
	}
	size := s.Size().Int64()
	if n.Int64() != size-1-5 {
		t.Errorf("overshoot skip = %v, want %d", n, size-1-5)
	}
	if _, err := c.Skip(big.NewInt(-1)); err == nil {
		t.Error("negative skip: want error")
	}
}

func TestPrefixMajorMutatesPrefixOnly(t *testing.T) {
	// The property the GPU reversal trick relies on: iterating N-1 times
	// from a key aligned on a charset boundary mutates only the first
	// character.
	s := MustNew(Alnum, 8, 8, PrefixMajor)
	c := NewCursor64(s, 0)
	suffix := string(c.Key()[1:])
	for i := 0; i < Alnum.Len()-1; i++ {
		if !c.Next() {
			t.Fatal("unexpected exhaustion")
		}
		if string(c.Key()[1:]) != suffix {
			t.Fatalf("iteration %d mutated the suffix: %q", i, c.Key())
		}
	}
}

func TestCursorIDRoundTrip(t *testing.T) {
	s := MustNew(abc, 1, 3, PrefixMajor)
	c, err := NewCursor(s, big.NewInt(17))
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.ID()
	if err != nil {
		t.Fatal(err)
	}
	if id.Int64() != 17 {
		t.Errorf("ID = %v, want 17", id)
	}
}
