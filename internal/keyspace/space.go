package keyspace

import (
	"errors"
	"fmt"
	"math/big"
)

// MaxKeyLen is the maximum supported key length. The paper limits candidate
// keys to 20 characters (Section IV-A); we keep the same bound so that every
// candidate fits in a single 64-byte MD5/SHA1 block after padding.
const MaxKeyLen = 20

// Space is the set of keys over a charset whose length lies in
// [MinLen, MaxLen], enumerated in a fixed Order. Identifiers are dense:
// ids 0 .. Size()-1 map bijectively onto the keys, shortest keys first.
type Space struct {
	cs     *Charset
	minLen int
	maxLen int
	order  Order

	size   *big.Int // total number of keys, equation (2)/(3)
	offset *big.Int // number of raw strings shorter than minLen
	size64 uint64   // size when it fits a uint64, else 0
	off64  uint64   // offset when the whole raw range fits a uint64, else 0
	fits64 bool
}

// New builds a key space. minLen may be 0 (the empty string is then a
// candidate, as in the paper's equation (1) enumeration).
func New(cs *Charset, minLen, maxLen int, order Order) (*Space, error) {
	if cs == nil {
		return nil, errors.New("keyspace: nil charset")
	}
	if !order.Valid() {
		return nil, fmt.Errorf("keyspace: invalid order %d", int(order))
	}
	if minLen < 0 || maxLen < minLen {
		return nil, fmt.Errorf("keyspace: invalid length range [%d, %d]", minLen, maxLen)
	}
	if maxLen > MaxKeyLen {
		return nil, fmt.Errorf("keyspace: max length %d exceeds limit %d", maxLen, MaxKeyLen)
	}
	s := &Space{cs: cs, minLen: minLen, maxLen: maxLen, order: order}
	s.size = SizeRange(cs.Len(), minLen, maxLen)
	if minLen == 0 {
		s.offset = new(big.Int)
	} else {
		s.offset = SizeRange(cs.Len(), 0, minLen-1)
	}
	end := new(big.Int).Add(s.offset, s.size)
	if end.IsUint64() {
		s.fits64 = true
		s.size64 = s.size.Uint64()
		s.off64 = s.offset.Uint64()
	}
	return s, nil
}

// MustNew is like New but panics on error.
func MustNew(cs *Charset, minLen, maxLen int, order Order) *Space {
	s, err := New(cs, minLen, maxLen, order)
	if err != nil {
		panic(err)
	}
	return s
}

// SizeRange returns the number of strings over an n-symbol charset with
// length in [k0, k], i.e. equation (2) of the paper, or equation (3) when
// n == 1.
func SizeRange(n, k0, k int) *big.Int {
	if k < k0 {
		return new(big.Int)
	}
	if n == 1 {
		// Equation (3): S = K - K0 + 1.
		return big.NewInt(int64(k - k0 + 1))
	}
	// Equation (2): S = (N^(K+1) - N^K0) / (N - 1).
	nn := big.NewInt(int64(n))
	hi := new(big.Int).Exp(nn, big.NewInt(int64(k+1)), nil)
	lo := new(big.Int).Exp(nn, big.NewInt(int64(k0)), nil)
	hi.Sub(hi, lo)
	return hi.Quo(hi, big.NewInt(int64(n-1)))
}

// Charset returns the space's charset.
func (s *Space) Charset() *Charset { return s.cs }

// MinLen returns the minimum key length.
func (s *Space) MinLen() int { return s.minLen }

// MaxLen returns the maximum key length.
func (s *Space) MaxLen() int { return s.maxLen }

// Order returns the enumeration order.
func (s *Space) Order() Order { return s.order }

// Size returns the number of keys in the space as a fresh big.Int.
func (s *Space) Size() *big.Int { return new(big.Int).Set(s.size) }

// Size64 returns the number of keys and true when it fits in a uint64.
func (s *Space) Size64() (uint64, bool) { return s.size64, s.fits64 }

// Contains reports whether key is a member of the space.
func (s *Space) Contains(key []byte) bool {
	return len(key) >= s.minLen && len(key) <= s.maxLen && s.cs.Contains(key)
}

// AppendKey appends the key with the given dense identifier to dst.
// It returns an error if id is out of range. id is not modified.
func (s *Space) AppendKey(dst []byte, id *big.Int) ([]byte, error) {
	if id.Sign() < 0 || id.Cmp(s.size) >= 0 {
		return dst, fmt.Errorf("keyspace: id %v out of range [0, %v)", id, s.size)
	}
	raw := new(big.Int).Add(id, s.offset)
	return appendRawKey(dst, raw, s.cs, s.order), nil
}

// Key returns the key with the given dense identifier.
func (s *Space) Key(id *big.Int) ([]byte, error) {
	return s.AppendKey(nil, id)
}

// Key64 returns the key with the given dense identifier using uint64
// arithmetic. It panics if the space does not fit in a uint64 or id is out
// of range; use Key for big spaces.
func (s *Space) Key64(id uint64) []byte {
	return s.AppendKey64(nil, id)
}

// AppendKey64 appends the key with identifier id to dst (uint64 fast path).
func (s *Space) AppendKey64(dst []byte, id uint64) []byte {
	if !s.fits64 {
		panic("keyspace: space does not fit in uint64; use AppendKey")
	}
	if id >= s.size64 {
		panic(fmt.Sprintf("keyspace: id %d out of range [0, %d)", id, s.size64))
	}
	return appendRawKey64(dst, id+s.off64, s.cs, s.order)
}

// ID returns the dense identifier of key, or an error if key is not in the
// space.
func (s *Space) ID(key []byte) (*big.Int, error) {
	if !s.Contains(key) {
		return nil, fmt.Errorf("keyspace: key %q not in space", key)
	}
	raw := rawID(key, s.cs, s.order)
	return raw.Sub(raw, s.offset), nil
}

// ID64 returns the dense identifier of key using uint64 arithmetic.
func (s *Space) ID64(key []byte) (uint64, error) {
	if !s.fits64 {
		return 0, errors.New("keyspace: space does not fit in uint64; use ID")
	}
	id, err := s.ID(key)
	if err != nil {
		return 0, err
	}
	return id.Uint64(), nil
}

// Whole returns the interval covering the entire space.
func (s *Space) Whole() Interval {
	return Interval{Start: new(big.Int), End: s.Size()}
}

// String describes the space.
func (s *Space) String() string {
	return fmt.Sprintf("keyspace{N=%d len=[%d,%d] %s size=%v}",
		s.cs.Len(), s.minLen, s.maxLen, s.order, s.size)
}
