package keyspace

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: f is injective — distinct ids map to distinct keys — and ID is
// its exact inverse, for random charsets/orders/ids.
func TestQuickBijection(t *testing.T) {
	charsets := []*Charset{abc, Lower, Digits, Alnum}
	f := func(csIdx uint8, orderBit bool, rawA, rawB uint32) bool {
		cs := charsets[int(csIdx)%len(charsets)]
		order := SuffixMajor
		if orderBit {
			order = PrefixMajor
		}
		s := MustNew(cs, 0, 6, order)
		size, _ := s.Size64()
		a := uint64(rawA) % size
		b := uint64(rawB) % size
		ka := s.Key64(a)
		kb := s.Key64(b)
		if (a == b) != (string(ka) == string(kb)) {
			return false
		}
		ia, err := s.ID64(ka)
		return err == nil && ia == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: next(f(i)) == f(i+1) starting at random positions.
func TestQuickSuccessor(t *testing.T) {
	f := func(orderBit bool, rawStart uint32, rawSteps uint8) bool {
		order := SuffixMajor
		if orderBit {
			order = PrefixMajor
		}
		s := MustNew(Lower, 1, 5, order)
		size, _ := s.Size64()
		start := uint64(rawStart) % size
		steps := uint64(rawSteps)
		if start+steps >= size {
			steps = size - 1 - start
		}
		c := NewCursor64(s, start)
		for k := uint64(1); k <= steps; k++ {
			if !c.Next() {
				return false
			}
			want := s.Key64(start + k)
			if string(c.Key()) != string(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SplitWeighted always forms an exact contiguous partition.
func TestQuickSplitWeightedPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(rawLen uint32, nNodes uint8) bool {
		n := int(nNodes)%8 + 1
		weights := make([]float64, n)
		any := false
		for i := range weights {
			weights[i] = float64(rng.Intn(2000))
			if weights[i] > 0 {
				any = true
			}
		}
		if !any {
			weights[0] = 1
		}
		iv := NewInterval(0, int64(rawLen))
		parts, err := iv.SplitWeighted(weights)
		if err != nil {
			return false
		}
		cur := new(big.Int)
		for _, p := range parts {
			if p.Start.Cmp(cur) != 0 || p.Len().Sign() < 0 {
				return false
			}
			cur = p.End
		}
		return cur.Cmp(iv.End) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Skip(n) lands on the same key as n Next calls.
func TestQuickSkipEqualsNext(t *testing.T) {
	f := func(rawStart uint16, rawSkip uint8) bool {
		s := MustNew(abc, 0, 6, SuffixMajor)
		size, _ := s.Size64()
		start := uint64(rawStart) % size
		skip := uint64(rawSkip)
		a := NewCursor64(s, start)
		b := NewCursor64(s, start)
		if _, err := a.Skip(new(big.Int).SetUint64(skip)); err != nil {
			return false
		}
		for i := uint64(0); i < skip; i++ {
			b.Next()
		}
		return string(a.Key()) == string(b.Key()) && a.Exhausted() == b.Exhausted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFOfID(b *testing.B) {
	s := MustNew(Alnum, 8, 8, PrefixMajor)
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = s.AppendKey64(buf[:0], uint64(i)%1_000_000)
	}
}

func BenchmarkNext(b *testing.B) {
	s := MustNew(Alnum, 8, 8, PrefixMajor)
	c := NewCursor64(s, 0)
	for i := 0; i < b.N; i++ {
		if !c.Next() {
			c = NewCursor64(s, 0)
		}
	}
}
