package keyspace

import (
	"fmt"
	"math/big"
)

// Cursor walks a key space sequentially using the cheap next operator of
// Figure 2 instead of re-running the f(id) conversion of Figure 1 for every
// candidate. This is the paper's core fine-grain optimization: K_next is a
// small constant (usually a single byte mutation) while K_f grows with the
// key length.
//
// A Cursor is not safe for concurrent use; each worker thread owns one.
type Cursor struct {
	space *Space
	key   []byte
	done  bool
}

// NewCursor positions a cursor on the key with dense identifier id.
func NewCursor(s *Space, id *big.Int) (*Cursor, error) {
	key, err := s.AppendKey(make([]byte, 0, s.maxLen+1), id)
	if err != nil {
		return nil, err
	}
	return &Cursor{space: s, key: key}, nil
}

// NewCursor64 positions a cursor on the key with identifier id (uint64 fast
// path). It panics when the space does not fit in a uint64.
func NewCursor64(s *Space, id uint64) *Cursor {
	key := s.AppendKey64(make([]byte, 0, s.maxLen+1), id)
	return &Cursor{space: s, key: key}
}

// CursorAt positions a cursor on an explicit key, which must belong to the
// space.
func CursorAt(s *Space, key []byte) (*Cursor, error) {
	if !s.Contains(key) {
		return nil, fmt.Errorf("keyspace: key %q not in space", key)
	}
	c := &Cursor{space: s, key: make([]byte, len(key), s.maxLen+1)}
	copy(c.key, key)
	return c, nil
}

// Key returns the current key. The returned slice aliases the cursor's
// internal buffer and is invalidated by Next; copy it to retain it.
func (c *Cursor) Key() []byte { return c.key }

// Exhausted reports whether the cursor has moved past the end of the space.
func (c *Cursor) Exhausted() bool { return c.done }

// Next advances the cursor to the successor key. It returns false, and
// marks the cursor exhausted, when the current key is the last one of the
// space. The amortized cost is O(1): most calls mutate a single byte.
func (c *Cursor) Next() bool {
	if c.done {
		return false
	}
	c.key = nextRaw(c.key, c.space.cs, c.space.order)
	if len(c.key) > c.space.maxLen {
		// The previous key was the last one of the space: every position
		// held the top symbol. Restore it and mark the cursor exhausted.
		top := c.space.cs.Symbol(c.space.cs.Len() - 1)
		c.key = c.key[:c.space.maxLen]
		for i := range c.key {
			c.key[i] = top
		}
		c.done = true
		return false
	}
	return true
}

// Skip advances the cursor by n keys (equivalent to n calls to Next).
// It returns the number of keys actually skipped, which is smaller than n
// only when the space is exhausted first. Skip re-derives the key from the
// identifier, so it costs one f(id) conversion, not n next operations.
func (c *Cursor) Skip(n *big.Int) (*big.Int, error) {
	if n.Sign() < 0 {
		return nil, fmt.Errorf("keyspace: negative skip %v", n)
	}
	if c.done {
		return new(big.Int), nil
	}
	id, err := c.space.ID(c.key)
	if err != nil {
		return nil, err
	}
	id.Add(id, n)
	last := new(big.Int).Sub(c.space.size, oneBig)
	skipped := new(big.Int).Set(n)
	if id.Cmp(last) > 0 {
		over := new(big.Int).Sub(id, last)
		skipped.Sub(skipped, over)
		if skipped.Sign() < 0 {
			skipped.SetInt64(0)
		}
		c.done = true
		id.Set(last)
	}
	c.key, err = c.space.AppendKey(c.key[:0], id)
	if err != nil {
		return nil, err
	}
	return skipped, nil
}

// ID returns the dense identifier of the current key.
func (c *Cursor) ID() (*big.Int, error) { return c.space.ID(c.key) }
