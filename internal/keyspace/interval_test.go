package keyspace

import (
	"math/big"
	"testing"
)

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(10, 25)
	if iv.Len().Int64() != 15 {
		t.Errorf("Len = %v, want 15", iv.Len())
	}
	if n, ok := iv.Len64(); !ok || n != 15 {
		t.Errorf("Len64 = %d, %v", n, ok)
	}
	if iv.Empty() {
		t.Error("non-empty interval reported empty")
	}
	if !iv.Contains(big.NewInt(10)) || iv.Contains(big.NewInt(25)) {
		t.Error("half-open bounds broken")
	}
	empty := NewInterval(5, 5)
	if !empty.Empty() || empty.Len().Sign() != 0 {
		t.Error("empty interval misreported")
	}
	inverted := NewInterval(9, 3)
	if inverted.Len().Sign() != 0 {
		t.Errorf("inverted Len = %v, want 0", inverted.Len())
	}
}

func TestIntervalTake(t *testing.T) {
	iv := NewInterval(0, 10)
	head, tail := iv.Take(big.NewInt(4))
	if head.Start.Int64() != 0 || head.End.Int64() != 4 {
		t.Errorf("head = %v", head)
	}
	if tail.Start.Int64() != 4 || tail.End.Int64() != 10 {
		t.Errorf("tail = %v", tail)
	}
	head, tail = iv.Take(big.NewInt(99))
	if head.Len().Int64() != 10 || !tail.Empty() {
		t.Errorf("overshoot take: head=%v tail=%v", head, tail)
	}
	head, tail = iv.Take(big.NewInt(0))
	if !head.Empty() || tail.Len().Int64() != 10 {
		t.Errorf("zero take: head=%v tail=%v", head, tail)
	}
}

func TestSplitN(t *testing.T) {
	iv := NewInterval(0, 10)
	parts := iv.SplitN(3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	wantLens := []int64{4, 3, 3}
	cur := int64(0)
	for i, p := range parts {
		if p.Start.Int64() != cur {
			t.Errorf("part %d starts at %v, want %d", i, p.Start, cur)
		}
		if p.Len().Int64() != wantLens[i] {
			t.Errorf("part %d len = %v, want %d", i, p.Len(), wantLens[i])
		}
		cur = p.End.Int64()
	}
	if cur != 10 {
		t.Errorf("coverage ends at %d", cur)
	}
	if got := iv.SplitN(0); got != nil {
		t.Error("SplitN(0) should be nil")
	}
}

// TestSplitWeighted checks the paper's balancing rule: sub-interval sizes
// proportional to node throughputs, exact coverage.
func TestSplitWeighted(t *testing.T) {
	iv := NewInterval(0, 1000)
	// Throughputs shaped like Table VIII (MD5, MKey/s).
	weights := []float64{71, 480, 214, 654, 1841}
	parts, err := iv.SplitWeighted(weights)
	if err != nil {
		t.Fatal(err)
	}
	cur := big.NewInt(0)
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, p := range parts {
		if p.Start.Cmp(cur) != 0 {
			t.Errorf("part %d not contiguous", i)
		}
		cur = p.End
		got := float64(p.Len().Int64())
		want := 1000 * weights[i] / sum
		if got < want-2 || got > want+2 {
			t.Errorf("part %d len = %v, want ≈ %.1f", i, got, want)
		}
	}
	if cur.Int64() != 1000 {
		t.Errorf("coverage ends at %v", cur)
	}
}

func TestSplitWeightedEdge(t *testing.T) {
	iv := NewInterval(0, 7)
	if _, err := iv.SplitWeighted(nil); err == nil {
		t.Error("no weights: want error")
	}
	if _, err := iv.SplitWeighted([]float64{1, -2}); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := iv.SplitWeighted([]float64{0, 0}); err == nil {
		t.Error("all-zero weights: want error")
	}
	parts, err := iv.SplitWeighted([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !parts[0].Empty() || parts[1].Len().Int64() != 7 {
		t.Errorf("zero-weight split: %v", parts)
	}
}

func TestSplitWeightedHuge(t *testing.T) {
	// 62^20-sized interval still splits exactly.
	size := SizeRange(62, 1, 20)
	iv := Interval{Start: new(big.Int), End: size}
	parts, err := iv.SplitWeighted([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	total := new(big.Int)
	for _, p := range parts {
		total.Add(total, p.Len())
	}
	if total.Cmp(size) != 0 {
		t.Errorf("coverage %v != size %v", total, size)
	}
}
