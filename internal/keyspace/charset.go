package keyspace

import (
	"errors"
	"fmt"
)

// Charset is an ordered set of distinct byte symbols. The order defines the
// digit values of the base-N number system used by the enumeration: the
// symbol at position 0 is the digit with value 0.
type Charset struct {
	symbols []byte
	index   [256]int16 // -1 when the byte is not in the set
}

// Predefined charsets matching the ones used throughout the paper's
// evaluation (Section VI uses lower+upper+digits, i.e. Alnum).
var (
	Lower  = MustCharset("abcdefghijklmnopqrstuvwxyz")
	Upper  = MustCharset("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
	Digits = MustCharset("0123456789")
	Alpha  = MustCharset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
	Alnum  = MustCharset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789")
	// Printable is the set of printable ASCII characters (space through ~).
	Printable = mustPrintable()
)

func mustPrintable() *Charset {
	b := make([]byte, 0, 95)
	for c := byte(' '); c <= '~'; c++ {
		b = append(b, c)
	}
	cs, err := NewCharset(string(b))
	if err != nil {
		panic(err)
	}
	return cs
}

// NewCharset builds a charset from the bytes of s, in order. It fails if s
// is empty or contains duplicate bytes.
func NewCharset(s string) (*Charset, error) {
	if len(s) == 0 {
		return nil, errors.New("keyspace: empty charset")
	}
	if len(s) > 256 {
		return nil, fmt.Errorf("keyspace: charset too large (%d > 256)", len(s))
	}
	c := &Charset{symbols: []byte(s)}
	for i := range c.index {
		c.index[i] = -1
	}
	for i, b := range c.symbols {
		if c.index[b] >= 0 {
			return nil, fmt.Errorf("keyspace: duplicate symbol %q in charset", b)
		}
		c.index[b] = int16(i)
	}
	return c, nil
}

// MustCharset is like NewCharset but panics on error. It is intended for
// package-level charset constants.
func MustCharset(s string) *Charset {
	c, err := NewCharset(s)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of symbols N in the charset.
func (c *Charset) Len() int { return len(c.symbols) }

// Symbol returns the symbol with digit value i.
func (c *Charset) Symbol(i int) byte { return c.symbols[i] }

// Index returns the digit value of symbol b, or -1 if b is not in the set.
func (c *Charset) Index(b byte) int { return int(c.index[b]) }

// Contains reports whether every byte of key belongs to the charset.
func (c *Charset) Contains(key []byte) bool {
	for _, b := range key {
		if c.index[b] < 0 {
			return false
		}
	}
	return true
}

// String returns the symbols of the charset in digit order.
func (c *Charset) String() string { return string(c.symbols) }
