package keyspace

import "testing"

func TestNewCharset(t *testing.T) {
	cs, err := NewCharset("abc")
	if err != nil {
		t.Fatalf("NewCharset: %v", err)
	}
	if cs.Len() != 3 {
		t.Fatalf("Len = %d, want 3", cs.Len())
	}
	for i, want := range []byte{'a', 'b', 'c'} {
		if got := cs.Symbol(i); got != want {
			t.Errorf("Symbol(%d) = %q, want %q", i, got, want)
		}
		if got := cs.Index(want); got != i {
			t.Errorf("Index(%q) = %d, want %d", want, got, i)
		}
	}
	if cs.Index('z') != -1 {
		t.Errorf("Index('z') = %d, want -1", cs.Index('z'))
	}
}

func TestNewCharsetErrors(t *testing.T) {
	if _, err := NewCharset(""); err == nil {
		t.Error("empty charset: want error")
	}
	if _, err := NewCharset("aa"); err == nil {
		t.Error("duplicate symbols: want error")
	}
	if _, err := NewCharset("aba"); err == nil {
		t.Error("duplicate symbols: want error")
	}
}

func TestPredefinedCharsets(t *testing.T) {
	cases := []struct {
		cs   *Charset
		want int
	}{
		{Lower, 26},
		{Upper, 26},
		{Digits, 10},
		{Alpha, 52},
		{Alnum, 62},
		{Printable, 95},
	}
	for _, c := range cases {
		if c.cs.Len() != c.want {
			t.Errorf("charset %q: Len = %d, want %d", c.cs.String()[:5], c.cs.Len(), c.want)
		}
	}
}

func TestCharsetContains(t *testing.T) {
	if !Lower.Contains([]byte("hello")) {
		t.Error("Lower should contain \"hello\"")
	}
	if Lower.Contains([]byte("Hello")) {
		t.Error("Lower should not contain \"Hello\"")
	}
	if !Alnum.Contains(nil) {
		t.Error("every charset contains the empty key")
	}
}

func TestMustCharsetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCharset(\"\") should panic")
		}
	}()
	MustCharset("")
}
