package keyspace

import "math/big"

// This file implements the raw enumeration over *all* strings of a charset
// (any length, including the empty string), exactly as in Figures 1 and 2
// of the paper. Space (space.go) layers the [MinLen, MaxLen] window on top.

// appendRawKey appends f(id) to dst and returns the extended slice,
// following the algorithm of Figure 1 (adapted to the chosen order).
// id is consumed.
func appendRawKey(dst []byte, id *big.Int, cs *Charset, order Order) []byte {
	n := big.NewInt(int64(cs.Len()))
	var rem big.Int
	start := len(dst)
	for id.Sign() > 0 {
		id.Sub(id, oneBig)
		id.QuoRem(id, n, &rem)
		// Figure 1 prepends (suffix-major); equation (4) appends instead.
		// We always append and fix up with a reversal for suffix-major,
		// which avoids quadratic behaviour on long keys.
		dst = append(dst, cs.Symbol(int(rem.Int64())))
	}
	if order == SuffixMajor {
		reverseBytes(dst[start:])
	}
	return dst
}

// appendRawKey64 is the uint64 fast path of appendRawKey.
func appendRawKey64(dst []byte, id uint64, cs *Charset, order Order) []byte {
	n := uint64(cs.Len())
	start := len(dst)
	for id > 0 {
		id--
		dst = append(dst, cs.Symbol(int(id%n)))
		id /= n
	}
	if order == SuffixMajor {
		reverseBytes(dst[start:])
	}
	return dst
}

// rawID computes the inverse of appendRawKey: the identifier of key in the
// raw enumeration. It returns nil if key contains a byte outside cs.
func rawID(key []byte, cs *Charset, order Order) *big.Int {
	n := big.NewInt(int64(cs.Len()))
	id := new(big.Int)
	if order == SuffixMajor {
		for _, b := range key {
			d := cs.Index(b)
			if d < 0 {
				return nil
			}
			// id = id*n + (d+1)
			id.Mul(id, n)
			id.Add(id, big.NewInt(int64(d)+1))
		}
	} else {
		for i := len(key) - 1; i >= 0; i-- {
			d := cs.Index(key[i])
			if d < 0 {
				return nil
			}
			id.Mul(id, n)
			id.Add(id, big.NewInt(int64(d)+1))
		}
	}
	return id
}

// nextRaw advances key to its successor in the raw enumeration, following
// Figure 2 (adapted to the chosen order). It mutates key in place when the
// length does not change and returns the possibly re-sliced key. In most
// calls it touches a single byte, which is the property the paper's cost
// model relies on (K_next << K_f).
func nextRaw(key []byte, cs *Charset, order Order) []byte {
	n := cs.Len()
	if order == SuffixMajor {
		for i := len(key) - 1; i >= 0; i-- {
			d := cs.Index(key[i]) + 1
			if d < n {
				key[i] = cs.Symbol(d)
				return key
			}
			key[i] = cs.Symbol(0)
		}
	} else {
		for i := 0; i < len(key); i++ {
			d := cs.Index(key[i]) + 1
			if d < n {
				key[i] = cs.Symbol(d)
				return key
			}
			key[i] = cs.Symbol(0)
		}
	}
	// Every position wrapped: the successor is one character longer, all
	// zero digits. The wrapped positions are already charset[0].
	return append(key, cs.Symbol(0))
}

func reverseBytes(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}

var oneBig = big.NewInt(1)
