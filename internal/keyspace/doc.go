// Package keyspace implements the candidate-key enumeration of the paper
// "Exhaustive Key Search on Clusters of GPUs" (Barbieri, Cardellini,
// Filippone; IPPS 2014), Section IV.
//
// A key space is the set of strings over a finite charset whose length lies
// in [MinLen, MaxLen]. The package provides the bijection f : N -> S of
// Figure 1, the cheap successor operator next of Figure 2, the two
// enumeration orders of equations (1) and (4) of the paper, the closed-form
// space-size formulas of equations (2) and (3), and exact interval
// arithmetic used to partition the space across computing nodes.
//
// Identifiers are arbitrary-precision (math/big) because realistic spaces
// exceed 2^64 (62 alphanumeric symbols at length 20 is about 7e35); a uint64
// fast path is provided for spaces that fit, which is what the per-thread
// hot loops use.
package keyspace
