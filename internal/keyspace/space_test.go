package keyspace

import (
	"math/big"
	"testing"
)

var abc = MustCharset("abc")

// TestMappingOne reproduces equation (1) / Figure 1 of the paper:
// [0,1,2,...] -> [ε, a, b, c, aa, ab, ac, ba, bb, ...].
func TestMappingOne(t *testing.T) {
	s := MustNew(abc, 0, 4, SuffixMajor)
	want := []string{"", "a", "b", "c", "aa", "ab", "ac", "ba", "bb", "bc", "ca", "cb", "cc", "aaa"}
	for i, w := range want {
		got, err := s.Key(big.NewInt(int64(i)))
		if err != nil {
			t.Fatalf("Key(%d): %v", i, err)
		}
		if string(got) != w {
			t.Errorf("Key(%d) = %q, want %q", i, got, w)
		}
	}
}

// TestMappingFour reproduces equation (4) of the paper:
// [0,1,2,...] -> [ε, a, b, c, aa, ba, ca, ab, bb, ...].
func TestMappingFour(t *testing.T) {
	s := MustNew(abc, 0, 4, PrefixMajor)
	want := []string{"", "a", "b", "c", "aa", "ba", "ca", "ab", "bb", "cb", "ac", "bc", "cc", "aaa"}
	for i, w := range want {
		got, err := s.Key(big.NewInt(int64(i)))
		if err != nil {
			t.Fatalf("Key(%d): %v", i, err)
		}
		if string(got) != w {
			t.Errorf("Key(%d) = %q, want %q", i, got, w)
		}
	}
}

func TestSizeRange(t *testing.T) {
	cases := []struct {
		n, k0, k int
		want     int64
	}{
		{3, 0, 0, 1},       // just ε
		{3, 0, 1, 4},       // ε, a, b, c
		{3, 0, 2, 13},      // + 9 two-char keys
		{3, 1, 2, 12},      // without ε
		{3, 2, 2, 9},       // only two-char keys
		{1, 0, 5, 6},       // equation (3): K - K0 + 1
		{1, 3, 5, 3},       // equation (3)
		{10, 1, 3, 1110},   // 10 + 100 + 1000
		{2, 4, 3, 0},       // inverted range
		{26, 1, 4, 475254}, // 26 + 676 + 17576 + 456976
	}
	for _, c := range cases {
		got := SizeRange(c.n, c.k0, c.k)
		if got.Int64() != c.want {
			t.Errorf("SizeRange(%d, %d, %d) = %v, want %d", c.n, c.k0, c.k, got, c.want)
		}
	}
}

// TestPaperSearchSpaceSizes checks the sizes quoted in the paper's
// introduction: "strings containing at most 8 alphabetic characters (both
// lower and upper case) is ≈ 54,508 billions; with 10 characters it becomes
// ≈ 147,389,520 billions".
func TestPaperSearchSpaceSizes(t *testing.T) {
	s8 := SizeRange(52, 1, 8)
	if lo, hi := int64(54_507e9), int64(54_509e9); s8.Int64() < lo || s8.Int64() > hi {
		t.Errorf("|alpha^<=8| = %v, want about 54508e9", s8)
	}
	s10 := SizeRange(52, 1, 10)
	lo := new(big.Int).SetInt64(147_389_519)
	lo.Mul(lo, big.NewInt(1e9))
	hi := new(big.Int).SetInt64(147_389_521)
	hi.Mul(hi, big.NewInt(1e9))
	if s10.Cmp(lo) < 0 || s10.Cmp(hi) > 0 {
		t.Errorf("|alpha^<=10| = %v, want about 147389520e9", s10)
	}
}

func TestSpaceOffsets(t *testing.T) {
	// Space with minLen 2: id 0 must be the first 2-char key.
	s := MustNew(abc, 2, 3, SuffixMajor)
	got, err := s.Key(big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aa" {
		t.Errorf("Key(0) = %q, want \"aa\"", got)
	}
	if s.Size().Int64() != 9+27 {
		t.Errorf("Size = %v, want 36", s.Size())
	}
	last, err := s.Key(big.NewInt(35))
	if err != nil {
		t.Fatal(err)
	}
	if string(last) != "ccc" {
		t.Errorf("Key(35) = %q, want \"ccc\"", last)
	}
}

func TestKeyOutOfRange(t *testing.T) {
	s := MustNew(abc, 1, 2, SuffixMajor)
	if _, err := s.Key(big.NewInt(12)); err == nil {
		t.Error("Key(size) should fail")
	}
	if _, err := s.Key(big.NewInt(-1)); err == nil {
		t.Error("Key(-1) should fail")
	}
}

func TestIDInverse(t *testing.T) {
	for _, order := range []Order{SuffixMajor, PrefixMajor} {
		s := MustNew(abc, 1, 4, order)
		size := s.Size().Int64()
		for i := int64(0); i < size; i++ {
			key, err := s.Key(big.NewInt(i))
			if err != nil {
				t.Fatalf("%v Key(%d): %v", order, i, err)
			}
			id, err := s.ID(key)
			if err != nil {
				t.Fatalf("%v ID(%q): %v", order, key, err)
			}
			if id.Int64() != i {
				t.Fatalf("%v ID(Key(%d)) = %v", order, i, id)
			}
		}
	}
}

func TestID64(t *testing.T) {
	s := MustNew(Lower, 1, 4, PrefixMajor)
	id, err := s.ID64([]byte("go"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Key64(id); string(got) != "go" {
		t.Errorf("Key64(ID64(go)) = %q", got)
	}
}

func TestIDRejectsForeignKeys(t *testing.T) {
	s := MustNew(abc, 1, 3, SuffixMajor)
	for _, bad := range []string{"", "abcd", "xyz", "aZ"} {
		if _, err := s.ID([]byte(bad)); err == nil {
			t.Errorf("ID(%q): want error", bad)
		}
	}
}

func TestNewSpaceErrors(t *testing.T) {
	if _, err := New(nil, 1, 2, SuffixMajor); err == nil {
		t.Error("nil charset: want error")
	}
	if _, err := New(abc, -1, 2, SuffixMajor); err == nil {
		t.Error("negative min: want error")
	}
	if _, err := New(abc, 3, 2, SuffixMajor); err == nil {
		t.Error("inverted range: want error")
	}
	if _, err := New(abc, 1, MaxKeyLen+1, SuffixMajor); err == nil {
		t.Error("over max length: want error")
	}
	if _, err := New(abc, 1, 2, Order(9)); err == nil {
		t.Error("invalid order: want error")
	}
}

func TestUnaryCharset(t *testing.T) {
	one := MustCharset("x")
	s := MustNew(one, 1, 5, SuffixMajor)
	if s.Size().Int64() != 5 {
		t.Fatalf("unary size = %v, want 5", s.Size())
	}
	for i := int64(0); i < 5; i++ {
		key, err := s.Key(big.NewInt(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(key) != int(i)+1 {
			t.Errorf("unary Key(%d) = %q", i, key)
		}
	}
}

func TestSize64(t *testing.T) {
	small := MustNew(Lower, 1, 4, SuffixMajor)
	if n, ok := small.Size64(); !ok || n != 475254 {
		t.Errorf("Size64 = %d, %v; want 475254, true", n, ok)
	}
	huge := MustNew(Alnum, 1, 20, SuffixMajor)
	if _, ok := huge.Size64(); ok {
		t.Error("62^<=20 should not fit in uint64")
	}
}

// TestBigIntPath exercises identifiers beyond uint64: the 62-symbol,
// 20-character space of the paper's kernel limit.
func TestBigIntPath(t *testing.T) {
	s := MustNew(Alnum, 1, 20, PrefixMajor)
	// An id around 2^100, constructed as size - 12345.
	id := new(big.Int).Sub(s.Size(), big.NewInt(12345))
	key, err := s.Key(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 20 {
		t.Fatalf("key %q has length %d, want 20", key, len(key))
	}
	back, err := s.ID(key)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cmp(id) != 0 {
		t.Errorf("ID(Key(%v)) = %v", id, back)
	}
	// Cursor works at big offsets too.
	c, err := NewCursor(s, id)
	if err != nil {
		t.Fatal(err)
	}
	prev := append([]byte(nil), c.Key()...)
	if !c.Next() {
		t.Fatal("Next at big offset failed")
	}
	nextID, err := s.ID(c.Key())
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Add(id, big.NewInt(1))
	if nextID.Cmp(want) != 0 {
		t.Errorf("next of %q = %q has id %v, want %v", prev, c.Key(), nextID, want)
	}
}
