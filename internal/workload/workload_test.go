package workload

import (
	"math/rand"
	"testing"

	"keysearch/internal/cracker"
	"keysearch/internal/keyspace"
)

func TestRandomKeyInSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small, _ := keyspace.New(keyspace.Lower, 2, 4, keyspace.PrefixMajor)
	for i := 0; i < 100; i++ {
		if k := RandomKey(small, rng); !small.Contains(k) {
			t.Fatalf("key %q outside space", k)
		}
	}
	huge, _ := keyspace.New(keyspace.Alnum, 5, 20, keyspace.PrefixMajor)
	for i := 0; i < 100; i++ {
		if k := RandomKey(huge, rng); !huge.Contains(k) {
			t.Fatalf("huge-space key %q outside space", k)
		}
	}
}

func TestTargetsVerify(t *testing.T) {
	space, _ := keyspace.New(keyspace.Digits, 2, 3, keyspace.PrefixMajor)
	ts := Targets(space, cracker.SHA1, 20, 7)
	if len(ts) != 20 {
		t.Fatalf("targets = %d", len(ts))
	}
	for _, tgt := range ts {
		if string(cracker.SHA1.HashKey(tgt.Key)) != string(tgt.Digest) {
			t.Errorf("digest mismatch for %q", tgt.Key)
		}
	}
	// Determinism.
	again := Targets(space, cracker.SHA1, 20, 7)
	for i := range ts {
		if string(ts[i].Key) != string(again[i].Key) {
			t.Fatal("targets not deterministic")
		}
	}
}

func TestAuditDB(t *testing.T) {
	space, _ := keyspace.New(keyspace.Lower, 2, 3, keyspace.PrefixMajor)
	rows := AuditDB(space, cracker.MD5, 10, 8, 3)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	salts := make(map[string]bool)
	for _, r := range rows {
		if len(r.Salt.Suffix) != 8 {
			t.Errorf("%s: salt length %d", r.User, len(r.Salt.Suffix))
		}
		salts[string(r.Salt.Suffix)] = true
		want := cracker.MD5.HashKey(r.Salt.Apply(nil, r.Plain))
		if string(want) != string(r.Digest) {
			t.Errorf("%s: digest mismatch", r.User)
		}
		k, err := cracker.NewSaltedKernel(cracker.MD5, cracker.KernelOptimized, r.Digest, r.Salt)
		if err != nil {
			t.Fatal(err)
		}
		if !k.Test(r.Plain) {
			t.Errorf("%s: kernel rejects ground truth", r.User)
		}
	}
	if len(salts) < 9 {
		t.Errorf("only %d distinct salts in 10 rows", len(salts))
	}
}

func TestSweep(t *testing.T) {
	s := Sweep(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sweep = %v", s)
		}
	}
}
