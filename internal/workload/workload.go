// Package workload generates deterministic benchmark and experiment
// inputs: target digests drawn from a key space, salted audit databases
// (the periodic "auditing sessions" of the paper's introduction), and
// parameter sweeps for the granularity and ablation benchmarks.
package workload

import (
	"fmt"
	"math/rand"

	"keysearch/internal/cracker"
	"keysearch/internal/keyspace"
)

// RandomKey returns a uniformly random key of the space.
func RandomKey(space *keyspace.Space, rng *rand.Rand) []byte {
	size, ok := space.Size64()
	if !ok {
		// Sample a random length then random symbols; adequate for
		// generator purposes on huge spaces.
		n := space.MinLen() + rng.Intn(space.MaxLen()-space.MinLen()+1)
		key := make([]byte, n)
		cs := space.Charset()
		for i := range key {
			key[i] = cs.Symbol(rng.Intn(cs.Len()))
		}
		return key
	}
	return space.Key64(rng.Uint64() % size)
}

// Target pairs a digest with the key that produced it (kept for
// verification; a real audit would not have it).
type Target struct {
	Key    []byte
	Digest []byte
}

// Targets generates n targets from random keys of the space.
func Targets(space *keyspace.Space, alg cracker.Algorithm, n int, seed int64) []Target {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Target, n)
	for i := range out {
		key := RandomKey(space, rng)
		out[i] = Target{Key: key, Digest: alg.HashKey(key)}
	}
	return out
}

// AuditRow is one row of a synthetic credential store: per-user random
// salt, salted digest. This is the substitution for a production password
// database (DESIGN.md §2): same shape, same code path, no real secrets.
type AuditRow struct {
	User   string
	Salt   cracker.Salt
	Digest []byte
	// Plain is the ground-truth password, retained so experiments can
	// verify their cracks.
	Plain []byte
}

// AuditDB builds n salted rows whose passwords are drawn from the space.
func AuditDB(space *keyspace.Space, alg cracker.Algorithm, n, saltLen int, seed int64) []AuditRow {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]AuditRow, n)
	for i := range rows {
		password := RandomKey(space, rng)
		salt := make([]byte, saltLen)
		for j := range salt {
			salt[j] = byte('!' + rng.Intn(94))
		}
		s := cracker.Salt{Suffix: salt}
		rows[i] = AuditRow{
			User:   fmt.Sprintf("user%03d", i),
			Salt:   s,
			Digest: alg.HashKey(s.Apply(nil, password)),
			Plain:  password,
		}
	}
	return rows
}

// Sweep returns a geometric parameter sweep [start, start*factor, ...] of
// length n, for granularity and batch-size benchmarks.
func Sweep(start float64, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
