package targetset

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Serialized form (all integers big-endian, mirroring the netproto wire
// conventions):
//
//	magic   [4]byte "TSET"
//	version u8      (1)
//	size    u8      digest length in bytes
//	k       u8      probe count
//	pad     u8      (0)
//	n       u32     corpus cardinality
//	seed    u64     probe-hash seed
//	fpr     f64     requested false-positive rate (IEEE 754 bits)
//	words   u32     filter length in 64-bit words
//	corpus  n*size bytes, sorted unique digests
//	bits    words*8 bytes
//	crc     u32     CRC-32 (IEEE) of everything above
//
// The encoding is canonical — a given corpus, rate and seed produce
// exactly one byte sequence — so its FNV-1a hash (ID) content-addresses
// the set the way netproto spec IDs address job specs. Decode verifies
// the CRC and every structural invariant, so a truncated or corrupted
// frame is rejected rather than admitted as a subtly different corpus;
// the WAL fuzzers' framing discipline, applied here (FuzzTargetSetCodec
// keeps it honest).

var codecMagic = [4]byte{'T', 'S', 'E', 'T'}

const codecVersion = 1

const headerLen = 4 + 1 + 1 + 1 + 1 + 4 + 8 + 8 + 4

// MaxEncoded bounds an accepted encoding (64 MiB holds a corpus of four
// million SHA-256 digests); Decode rejects anything larger up front.
const MaxEncoded = 64 << 20

// Encode serializes the set in the canonical form above.
func (s *Set) Encode() []byte {
	b := make([]byte, 0, headerLen+len(s.corpus)+len(s.bits)*8+4)
	b = append(b, codecMagic[:]...)
	b = append(b, codecVersion, byte(s.size), byte(s.k), 0)
	b = binary.BigEndian.AppendUint32(b, uint32(s.n))
	b = binary.BigEndian.AppendUint64(b, s.seed)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(s.fpr))
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.bits)))
	b = append(b, s.corpus...)
	for _, w := range s.bits {
		b = binary.BigEndian.AppendUint64(b, w)
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// ID returns the FNV-1a 64-bit hash of an encoded set — the content
// address the wire protocol ships ahead of corpus chunks. It matches
// netproto's spec-ID hash by construction, so either side can derive it
// from the blob alone.
func ID(encoded []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range encoded {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// Decode parses and verifies an encoded set. Every failure mode is a
// distinct error: bad length, bad magic/version, CRC mismatch, geometry
// that does not satisfy the builder's invariants, or a corpus that is
// not sorted and unique (the canonical-form requirement content
// addressing depends on).
func Decode(b []byte) (*Set, error) {
	if len(b) > MaxEncoded {
		return nil, fmt.Errorf("targetset: encoding of %d bytes exceeds the %d-byte cap", len(b), MaxEncoded)
	}
	if len(b) < headerLen+4 {
		return nil, fmt.Errorf("targetset: truncated encoding (%d bytes)", len(b))
	}
	if [4]byte(b[:4]) != codecMagic {
		return nil, fmt.Errorf("targetset: bad magic %q", b[:4])
	}
	if b[4] != codecVersion {
		return nil, fmt.Errorf("targetset: unsupported codec version %d", b[4])
	}
	size := int(b[5])
	k := int(b[6])
	if b[7] != 0 {
		return nil, fmt.Errorf("targetset: nonzero pad byte %d", b[7])
	}
	n := int(binary.BigEndian.Uint32(b[8:12]))
	seed := binary.BigEndian.Uint64(b[12:20])
	fpr := math.Float64frombits(binary.BigEndian.Uint64(b[20:28]))
	words := int(binary.BigEndian.Uint32(b[28:32]))

	if size < 1 {
		return nil, fmt.Errorf("targetset: zero digest size")
	}
	if k < 1 || k > maxHashes {
		return nil, fmt.Errorf("targetset: probe count %d outside [1,%d]", k, maxHashes)
	}
	if n < 1 {
		return nil, fmt.Errorf("targetset: empty corpus")
	}
	if words < 1 || words&(words-1) != 0 {
		return nil, fmt.Errorf("targetset: filter length %d words is not a power of two", words)
	}
	if fpr <= 0 || fpr > 0.5 || math.IsNaN(fpr) {
		return nil, fmt.Errorf("targetset: false-positive rate %v outside (0, 0.5]", fpr)
	}
	want := headerLen + n*size + words*8 + 4
	if len(b) != want {
		return nil, fmt.Errorf("targetset: encoding is %d bytes, header implies %d", len(b), want)
	}
	sum := binary.BigEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(b[:len(b)-4]); got != sum {
		return nil, fmt.Errorf("targetset: CRC mismatch: frame says %08x, content sums to %08x", sum, got)
	}

	corpus := make([]byte, n*size)
	copy(corpus, b[headerLen:headerLen+n*size])
	for i := 1; i < n; i++ {
		prev := corpus[(i-1)*size : i*size]
		cur := corpus[i*size : (i+1)*size]
		if bytes.Compare(prev, cur) >= 0 {
			return nil, fmt.Errorf("targetset: corpus not sorted/unique at digest %d (non-canonical encoding)", i)
		}
	}
	bits := make([]uint64, words)
	off := headerLen + n*size
	for i := range bits {
		bits[i] = binary.BigEndian.Uint64(b[off+i*8 : off+i*8+8])
	}
	s := &Set{
		size:   size,
		n:      n,
		corpus: corpus,
		seed:   seed,
		k:      k,
		mask:   uint64(words)*64 - 1,
		bits:   bits,
		fpr:    fpr,
	}
	// Re-verify the no-false-negative invariant: every corpus digest must
	// hit the filter. The CRC protects against corruption; this protects
	// against a consistent-but-wrong frame (a CRC collision, or a foreign
	// encoder with a different probe function), which would otherwise turn
	// the pre-screen into silent missed keys — the one failure mode a
	// search must never have.
	for i := 0; i < n; i++ {
		if !s.MayContain(corpus[i*size : (i+1)*size]) {
			return nil, fmt.Errorf("targetset: filter misses corpus digest %d (incompatible or corrupt bank)", i)
		}
	}
	return s, nil
}

