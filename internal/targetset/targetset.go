// Package targetset implements the multi-target test condition: a
// deterministic, seedable Bloom filter sized from the corpus cardinality
// and a requested false-positive rate, backed by a sorted exact-confirm
// index over the full digest corpus.
//
// The shape follows the multi-target GPU crackers the paper's workload
// implies (and the KeyHunt lineage documents): candidates are hashed
// once, the digest probed against a bit bank that answers "certainly not
// a target" for all but a tuned fraction p of candidates, and only the
// survivors pay for an exact membership check. The effective per-candidate
// test cost is therefore
//
//	K_C = K_filter + p·K_confirm
//
// which is how internal/core's cost model accounts for it (core.TwoStage).
//
// Everything is deterministic: the same digests, rate and seed produce the
// same filter bit for bit, so the serialized form (see codec.go) is
// content-addressable and both ends of the wire protocol agree on it.
package targetset

import (
	"bytes"
	"fmt"
	"math"
	"sort"
)

// DefaultFPRate is the false-positive rate used when Options.FPRate is
// zero: one candidate in a thousand pays the exact-confirm cost.
const DefaultFPRate = 1e-3

// maxHashes caps the probe count k; beyond ~16 probes the filter is
// misconfigured (k* = m/n·ln2 only reaches 16 when p < 2^-16).
const maxHashes = 16

// Options configures Build.
type Options struct {
	// FPRate is the requested false-positive rate in (0, 0.5]
	// (0 = DefaultFPRate). The filter is sized so the expected rate at
	// the given corpus cardinality stays at or below it.
	FPRate float64
	// Seed perturbs the probe hash function. Two sets built with
	// different seeds share no bit pattern, which is what lets a fleet
	// re-roll a pathological corpus; the zero seed is fully supported
	// and is the canonical choice.
	Seed uint64
}

// Set is an immutable digest corpus with a Bloom pre-screen. A Set is
// safe for concurrent readers; Build is the only writer.
type Set struct {
	size   int    // digest length in bytes
	n      int    // corpus cardinality after dedup
	corpus []byte // sorted unique digests, n*size bytes
	seed   uint64
	k      int      // probes per membership query
	mask   uint64   // bit-index mask; bit count mask+1 is a power of two
	bits   []uint64 // the filter bank, (mask+1)/64 words
	fpr    float64  // requested rate (after defaulting)
}

// Build constructs a Set from raw digests. All digests must share one
// nonzero length; duplicates are removed. The input slice is not
// retained.
func Build(digests [][]byte, opt Options) (*Set, error) {
	if len(digests) == 0 {
		return nil, fmt.Errorf("targetset: empty corpus")
	}
	size := len(digests[0])
	if size < 1 || size > 255 {
		return nil, fmt.Errorf("targetset: digest size %d outside [1,255]", size)
	}
	for i, d := range digests {
		if len(d) != size {
			return nil, fmt.Errorf("targetset: digest %d has length %d, want %d", i, len(d), size)
		}
	}
	if opt.FPRate == 0 {
		opt.FPRate = DefaultFPRate
	}
	if opt.FPRate < 0 || opt.FPRate > 0.5 || math.IsNaN(opt.FPRate) {
		return nil, fmt.Errorf("targetset: false-positive rate %v outside (0, 0.5]", opt.FPRate)
	}

	sorted := make([][]byte, len(digests))
	copy(sorted, digests)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	corpus := make([]byte, 0, len(sorted)*size)
	n := 0
	for i, d := range sorted {
		if i > 0 && bytes.Equal(d, sorted[i-1]) {
			continue
		}
		corpus = append(corpus, d...)
		n++
	}

	mBits, k := Size(n, opt.FPRate)
	s := &Set{
		size:   size,
		n:      n,
		corpus: corpus,
		seed:   opt.Seed,
		k:      k,
		mask:   mBits - 1,
		bits:   make([]uint64, mBits/64),
		fpr:    opt.FPRate,
	}
	for i := 0; i < n; i++ {
		s.insert(corpus[i*size : (i+1)*size])
	}
	return s, nil
}

// Size returns the filter geometry for a corpus of n digests at rate p:
// the bit count m (a power of two, at least 64) and the probe count k.
// The optimum m = -n·ln p / (ln 2)² is rounded up to the next power of
// two, and k = m/n·ln 2 re-derived from the rounded m, so the expected
// rate is at or below the request.
func Size(n int, p float64) (mBits uint64, k int) {
	if n < 1 {
		n = 1
	}
	m := -float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)
	mBits = 64
	for float64(mBits) < m {
		mBits <<= 1
	}
	k = int(math.Round(float64(mBits) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > maxHashes {
		k = maxHashes
	}
	return mBits, k
}

// hash2 derives the two 64-bit hash values double hashing combines into
// the k probe indices: h1 is seeded FNV-1a over the digest, h2 a
// finalizer-mixed copy forced odd (odd strides visit every slot of a
// power-of-two table).
func (s *Set) hash2(d []byte) (h1, h2 uint64) {
	h1 = 14695981039346656037 ^ (s.seed * 0x9e3779b97f4a7c15)
	//keyvet:hotloop
	for _, b := range d {
		h1 ^= uint64(b)
		h1 *= 1099511628211
	}
	h2 = h1
	h2 ^= h2 >> 33
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	h2 |= 1
	return h1, h2
}

func (s *Set) insert(d []byte) {
	h1, h2 := s.hash2(d)
	for i := 0; i < s.k; i++ {
		idx := (h1 + uint64(i)*h2) & s.mask
		s.bits[idx>>6] |= 1 << (idx & 63)
	}
}

// MayContain is the Bloom pre-screen: false means the digest is
// certainly not in the corpus (the no-false-negative guarantee); true
// means it is a member or one of the tuned fraction of false positives.
// Zero allocations — this runs once per candidate on the search hot
// path.
func (s *Set) MayContain(d []byte) bool {
	h1, h2 := s.hash2(d)
	//keyvet:hotloop
	for i := 0; i < s.k; i++ {
		idx := (h1 + uint64(i)*h2) & s.mask
		if s.bits[idx>>6]&(1<<(idx&63)) == 0 {
			return false
		}
	}
	return true
}

// Confirm is the exact path: a binary search over the sorted corpus.
func (s *Set) Confirm(d []byte) bool {
	lo, hi := 0, s.n
	//keyvet:hotloop
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch bytes.Compare(s.corpus[mid*s.size:mid*s.size+s.size], d) {
		case -1:
			lo = mid + 1
		case 1:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Contains is the two-stage membership test, filter ∘ confirm: exact
// (never a false positive, never a false negative), with the confirm
// cost paid only by candidates that pass the filter.
func (s *Set) Contains(d []byte) bool {
	return s.MayContain(d) && s.Confirm(d)
}

// Len returns the corpus cardinality (after deduplication).
func (s *Set) Len() int { return s.n }

// DigestSize returns the digest length in bytes.
func (s *Set) DigestSize() int { return s.size }

// Digest returns the i-th corpus digest in sorted order (a copy).
func (s *Set) Digest(i int) []byte {
	d := make([]byte, s.size)
	copy(d, s.corpus[i*s.size:(i+1)*s.size])
	return d
}

// Bits returns the filter size in bits.
func (s *Set) Bits() uint64 { return s.mask + 1 }

// Hashes returns the probe count k.
func (s *Set) Hashes() int { return s.k }

// Seed returns the probe-hash seed.
func (s *Set) Seed() uint64 { return s.seed }

// FPRequested returns the false-positive rate the set was built for.
func (s *Set) FPRequested() float64 { return s.fpr }

// FPEstimate returns the textbook expected false-positive rate of the
// built geometry, (1 - e^(-kn/m))^k.
func (s *Set) FPEstimate() float64 {
	m := float64(s.mask + 1)
	return math.Pow(1-math.Exp(-float64(s.k)*float64(s.n)/m), float64(s.k))
}

// MeasuredFPR probes the filter with `trials` pseudo-random non-member
// digests (a deterministic splitmix64 stream from rngSeed) and returns
// the observed pass fraction — the number EXPERIMENTS.md records against
// the requested rate.
func (s *Set) MeasuredFPR(trials int, rngSeed uint64) float64 {
	if trials <= 0 {
		return 0
	}
	d := make([]byte, s.size)
	state := rngSeed
	pass := 0
	for t := 0; t < trials; t++ {
		for i := 0; i < s.size; i += 8 {
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			for j := 0; j < 8 && i+j < s.size; j++ {
				d[i+j] = byte(z >> (8 * j))
			}
		}
		if !s.MayContain(d) {
			continue
		}
		if s.Confirm(d) {
			t-- // a true member is not a false-positive trial; redraw
			continue
		}
		pass++
	}
	return float64(pass) / float64(trials)
}
