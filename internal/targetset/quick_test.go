package targetset

import (
	"testing"
	"testing/quick"
)

// TestQuickNoFalseNegatives is the load-bearing Bloom property: any
// digest inserted into a set is reported present by the filter alone,
// for arbitrary corpora, rates and seeds.
func TestQuickNoFalseNegatives(t *testing.T) {
	prop := func(raw [][16]byte, seed uint64, rateSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		digests := make([][]byte, len(raw))
		for i := range raw {
			digests[i] = raw[i][:]
		}
		rates := []float64{1e-1, 1e-2, 1e-3, 1e-4, 0.5}
		s, err := Build(digests, Options{FPRate: rates[int(rateSel)%len(rates)], Seed: seed})
		if err != nil {
			return false
		}
		for _, d := range digests {
			if !s.MayContain(d) || !s.Confirm(d) || !s.Contains(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickContainsIsExact: Contains must agree with the exact index on
// every probe — the filter can only ever add confirm work, never change
// the answer.
func TestQuickContainsIsExact(t *testing.T) {
	prop := func(members, probes [][8]byte, seed uint64) bool {
		if len(members) == 0 {
			return true
		}
		digests := make([][]byte, len(members))
		for i := range members {
			digests[i] = members[i][:]
		}
		s, err := Build(digests, Options{FPRate: 0.5, Seed: seed})
		if err != nil {
			return false
		}
		for _, p := range probes {
			if s.Contains(p[:]) != s.Confirm(p[:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCodecRoundTrip: encode/decode is the identity on sets, for
// arbitrary corpora.
func TestQuickCodecRoundTrip(t *testing.T) {
	prop := func(raw [][12]byte, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		digests := make([][]byte, len(raw))
		for i := range raw {
			digests[i] = raw[i][:]
		}
		s, err := Build(digests, Options{Seed: seed})
		if err != nil {
			return false
		}
		enc := s.Encode()
		back, err := Decode(enc)
		if err != nil {
			return false
		}
		enc2 := back.Encode()
		if len(enc) != len(enc2) {
			return false
		}
		for i := range enc {
			if enc[i] != enc2[i] {
				return false
			}
		}
		return ID(enc) == ID(enc2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
