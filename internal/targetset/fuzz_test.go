package targetset

import (
	"bytes"
	"testing"
)

// FuzzTargetSetCodec feeds the decoder arbitrary frames — seeded with
// valid encodings plus corrupted and truncated variants, mirroring the
// WAL fuzzers — and holds it to the codec contract: no panic ever, and
// any frame that decodes must re-encode byte-identically (the canonical
// form), carry a self-consistent geometry, and answer membership for its
// own corpus.
func FuzzTargetSetCodec(f *testing.F) {
	for _, seedCase := range []struct {
		n, size int
		seed    uint64
	}{{1, 1, 0}, {5, 16, 1}, {64, 20, 2}, {200, 32, 3}} {
		s, err := Build(testDigests(seedCase.n, seedCase.size, seedCase.seed), Options{Seed: seedCase.seed})
		if err != nil {
			f.Fatal(err)
		}
		enc := s.Encode()
		f.Add(enc)
		// Truncations at interesting boundaries.
		f.Add(enc[:headerLen])
		f.Add(enc[:len(enc)/2])
		f.Add(enc[:len(enc)-4])
		// Single-byte corruptions across the regions.
		for _, off := range []int{0, 4, 5, 6, 7, 8, 12, 28, headerLen, len(enc) - 5, len(enc) - 1} {
			bad := append([]byte(nil), enc...)
			bad[off] ^= 0x5a
			f.Add(bad)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("TSET"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return // rejected frames just need to not panic
		}
		enc := s.Encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted frame is not canonical: re-encodes to %d bytes from %d", len(enc), len(data))
		}
		if s.Len() < 1 || s.DigestSize() < 1 || s.Hashes() < 1 || s.Hashes() > maxHashes {
			t.Fatalf("accepted frame with bad geometry: n=%d size=%d k=%d", s.Len(), s.DigestSize(), s.Hashes())
		}
		if b := s.Bits(); b < 64 || b&(b-1) != 0 {
			t.Fatalf("accepted frame with non-power-of-two filter: %d bits", b)
		}
		// Every corpus digest must be a member through all three paths.
		for i := 0; i < s.Len(); i++ {
			d := s.Digest(i)
			if !s.MayContain(d) || !s.Confirm(d) || !s.Contains(d) {
				t.Fatalf("decoded set loses its own digest %d", i)
			}
		}
		// Round trip once more through Decode.
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		if !bytes.Equal(back.Encode(), enc) {
			t.Fatal("second round trip diverged")
		}
	})
}
