package targetset

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
)

// testDigests produces n deterministic pseudo-random digests of the
// given size (splitmix64 stream; distinct seeds give disjoint corpora
// with overwhelming probability).
func testDigests(n, size int, seed uint64) [][]byte {
	out := make([][]byte, n)
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range out {
		d := make([]byte, size)
		for j := 0; j < size; j += 8 {
			v := next()
			for b := 0; b < 8 && j+b < size; b++ {
				d[j+b] = byte(v >> (8 * b))
			}
		}
		out[i] = d
	}
	return out
}

func TestBuildMembership(t *testing.T) {
	digests := testDigests(1000, 16, 1)
	s, err := Build(digests, Options{FPRate: 1e-3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	for i, d := range digests {
		if !s.MayContain(d) {
			t.Fatalf("digest %d: false negative from the filter", i)
		}
		if !s.Confirm(d) {
			t.Fatalf("digest %d: exact index misses a member", i)
		}
		if !s.Contains(d) {
			t.Fatalf("digest %d: Contains misses a member", i)
		}
	}
	for i, d := range testDigests(1000, 16, 2) {
		if s.Confirm(d) {
			t.Fatalf("non-member %d confirmed", i)
		}
		if s.Contains(d) {
			t.Fatalf("non-member %d contained", i)
		}
	}
}

func TestBuildDedup(t *testing.T) {
	digests := testDigests(100, 20, 3)
	doubled := append(append([][]byte{}, digests...), digests...)
	s, err := Build(doubled, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d after dedup, want 100", s.Len())
	}
	// Corpus must come back sorted and unique through the accessor.
	prev := s.Digest(0)
	for i := 1; i < s.Len(); i++ {
		cur := s.Digest(i)
		if bytes.Compare(prev, cur) >= 0 {
			t.Fatalf("corpus not sorted/unique at %d", i)
		}
		prev = cur
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Build([][]byte{{1, 2}, {1, 2, 3}}, Options{}); err == nil {
		t.Error("mixed digest sizes accepted")
	}
	if _, err := Build([][]byte{{}}, Options{}); err == nil {
		t.Error("zero-length digest accepted")
	}
	if _, err := Build([][]byte{{1}}, Options{FPRate: 0.9}); err == nil {
		t.Error("rate > 0.5 accepted")
	}
	if _, err := Build([][]byte{{1}}, Options{FPRate: -1}); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestSizeGeometry(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{1, 1e-3}, {1000, 1e-3}, {1000, 1e-6}, {1 << 20, 1e-3}, {10, 0.5}} {
		m, k := Size(tc.n, tc.p)
		if m&(m-1) != 0 || m < 64 {
			t.Errorf("Size(%d, %g): m = %d not a power of two >= 64", tc.n, tc.p, m)
		}
		if k < 1 || k > maxHashes {
			t.Errorf("Size(%d, %g): k = %d outside [1,%d]", tc.n, tc.p, k, maxHashes)
		}
		// The rounded-up geometry must meet the requested rate in
		// expectation.
		est := math.Pow(1-math.Exp(-float64(k)*float64(tc.n)/float64(m)), float64(k))
		if est > tc.p*1.05 {
			t.Errorf("Size(%d, %g): expected rate %g exceeds request", tc.n, tc.p, est)
		}
	}
}

func TestSeedChangesFilter(t *testing.T) {
	digests := testDigests(256, 16, 4)
	a, err := Build(digests, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(digests, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("different seeds produced identical encodings")
	}
	// Both remain exact regardless of seed.
	for _, d := range digests {
		if !a.Contains(d) || !b.Contains(d) {
			t.Fatal("seeded set lost a member")
		}
	}
}

func TestDeterminism(t *testing.T) {
	digests := testDigests(512, 16, 5)
	a, _ := Build(digests, Options{FPRate: 1e-4, Seed: 9})
	// Shuffled input order must not change the canonical encoding.
	shuffled := make([][]byte, len(digests))
	for i, d := range digests {
		shuffled[(i*37)%len(digests)] = d
	}
	b, _ := Build(shuffled, Options{FPRate: 1e-4, Seed: 9})
	ea, eb := a.Encode(), b.Encode()
	if !bytes.Equal(ea, eb) {
		t.Fatal("insertion order leaked into the canonical encoding")
	}
	if ID(ea) != ID(eb) {
		t.Fatal("content IDs differ for identical encodings")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	digests := testDigests(300, 16, 6)
	s, err := Build(digests, Options{FPRate: 1e-3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	enc := s.Encode()
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Encode(), enc) {
		t.Fatal("decode(encode) does not re-encode identically")
	}
	if back.Len() != s.Len() || back.DigestSize() != s.DigestSize() ||
		back.Bits() != s.Bits() || back.Hashes() != s.Hashes() ||
		back.Seed() != s.Seed() || back.FPRequested() != s.FPRequested() {
		t.Fatal("decoded geometry differs")
	}
	for _, d := range digests {
		if !back.Contains(d) {
			t.Fatal("decoded set lost a member")
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s, err := Build(testDigests(64, 16, 7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	enc := s.Encode()
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := Decode(enc[:10]); err == nil {
		t.Error("header-only frame accepted")
	}
	for _, off := range []int{0, 4, 5, 6, 8, 20, headerLen, len(enc) - 5} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0xff
		if _, err := Decode(bad); err == nil {
			t.Errorf("byte-%d corruption accepted", off)
		}
	}
	// An unsorted corpus with a freshly valid CRC must still be rejected
	// (the canonical-form invariant, not just integrity).
	bad := append([]byte(nil), enc...)
	a := bad[headerLen : headerLen+16]
	b := bad[headerLen+16 : headerLen+32]
	tmp := make([]byte, 16)
	copy(tmp, a)
	copy(a, b)
	copy(b, tmp)
	bad = bad[:len(bad)-4]
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(bad))
	bad = append(bad, crc[:]...)
	if _, err := Decode(bad); err == nil {
		t.Error("non-canonical (unsorted) corpus accepted despite valid CRC")
	}
}

func TestMeasuredFPRWithinTwiceRequested(t *testing.T) {
	n, trials := 20000, 200000
	if testing.Short() {
		n, trials = 2000, 20000
	}
	for _, req := range []float64{1e-2, 1e-3} {
		s, err := Build(testDigests(n, 16, 8), Options{FPRate: req})
		if err != nil {
			t.Fatal(err)
		}
		got := s.MeasuredFPR(trials, 99)
		if got > 2*req {
			t.Errorf("measured FPR %g exceeds 2x the requested %g (n=%d)", got, req, n)
		}
	}
}

// TestMillionDigestFPR is the acceptance-criteria measurement: on a
// 10^6-digest corpus the measured false-positive rate stays within 2x
// the requested rate.
func TestMillionDigestFPR(t *testing.T) {
	if testing.Short() {
		t.Skip("million-digest corpus")
	}
	const req = 1e-3
	s, err := Build(testDigests(1_000_000, 16, 10), Options{FPRate: req})
	if err != nil {
		t.Fatal(err)
	}
	got := s.MeasuredFPR(500000, 11)
	if got > 2*req {
		t.Errorf("measured FPR %g exceeds 2x the requested %g on a 10^6 corpus", got, req)
	}
	t.Logf("10^6 corpus: m=%d bits, k=%d, requested %g, estimated %g, measured %g",
		s.Bits(), s.Hashes(), req, s.FPEstimate(), got)
}
