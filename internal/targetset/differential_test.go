package targetset

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"keysearch/internal/hash/md5x"
	"keysearch/internal/hash/sha1x"
	"keysearch/internal/hash/sha256x"
)

// differentialCase runs one hash function through the differential
// harness: a randomized corpus with planted member digests, a Bloom
// pre-screened search over a candidate key stream, and a brute-force
// linear-scan reference. The two hit sets must be byte-identical.
func differentialCase(t *testing.T, name string, hash func([]byte) []byte, opt Options) {
	t.Helper()
	const keys = 4096
	candidate := func(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }

	// Plant every 64th candidate's digest; pad the corpus with noise.
	var corpus [][]byte
	var wantHits []string
	for i := 0; i < keys; i += 64 {
		corpus = append(corpus, hash(candidate(i)))
		wantHits = append(wantHits, string(candidate(i)))
	}
	noise := testDigests(5000, len(corpus[0]), 0xd1f)
	corpus = append(corpus, noise...)

	s, err := Build(corpus, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Linear-scan reference: exhaustive digest comparison, no filter.
	refHit := func(d []byte) bool {
		for _, c := range corpus {
			if bytes.Equal(c, d) {
				return true
			}
		}
		return false
	}

	var bloomHits, refHits []string
	for i := 0; i < keys; i++ {
		key := candidate(i)
		d := hash(key)
		if s.Contains(d) {
			bloomHits = append(bloomHits, string(key))
		}
		if refHit(d) {
			refHits = append(refHits, string(key))
		}
	}
	sort.Strings(bloomHits)
	sort.Strings(refHits)
	sort.Strings(wantHits)
	if fmt.Sprint(bloomHits) != fmt.Sprint(refHits) {
		t.Fatalf("%s: Bloom hit set %v differs from linear scan %v", name, bloomHits, refHits)
	}
	if fmt.Sprint(bloomHits) != fmt.Sprint(wantHits) {
		t.Fatalf("%s: hit set %v differs from planted keys %v", name, bloomHits, wantHits)
	}
}

// TestDifferentialSearchers: for each supported hash, the pre-screened
// path returns byte-identical hit sets to the linear scan, both at the
// default rate and with an adversarial filter built to collide (a tiny
// bank at the maximum legal rate, so non-members routinely pass the
// filter and the confirm stage carries the correctness burden alone).
func TestDifferentialSearchers(t *testing.T) {
	hashes := []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"md5x", func(k []byte) []byte { d := md5x.Sum(k); return d[:] }},
		{"sha1x", func(k []byte) []byte { d := sha1x.Sum(k); return d[:] }},
		{"sha256x", func(k []byte) []byte { d := sha256x.Sum(k); return d[:] }},
	}
	for _, h := range hashes {
		t.Run(h.name, func(t *testing.T) { differentialCase(t, h.name, h.fn, Options{FPRate: 1e-3}) })
		t.Run(h.name+"/adversarial", func(t *testing.T) {
			differentialCase(t, h.name, h.fn, Options{FPRate: 0.5, Seed: 0xbad})
		})
	}
}

// TestAdversarialCollisions builds a deliberately saturated filter and
// verifies the two-stage test stays exact on digests known to collide in
// the filter: false positives of MayContain must be rejected by
// Contains.
func TestAdversarialCollisions(t *testing.T) {
	corpus := testDigests(512, 16, 21)
	s, err := Build(corpus, Options{FPRate: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	collisions := 0
	for _, d := range testDigests(20000, 16, 22) {
		if s.MayContain(d) && !s.Confirm(d) {
			collisions++
			if s.Contains(d) {
				t.Fatal("filter collision leaked through Contains")
			}
		}
	}
	if collisions == 0 {
		t.Fatal("adversarial rate produced no filter collisions; the test exercises nothing")
	}
	t.Logf("exercised %d filter collisions (rate 0.5 bank)", collisions)
}
