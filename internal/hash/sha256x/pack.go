package sha256x

import "fmt"

// MaxSingleBlockKey is the longest key that fits a single SHA-256 block
// with its 0x80 terminator and 64-bit length field.
const MaxSingleBlockKey = 55

// PackKey encodes a key of at most 55 bytes as a single padded SHA-256
// block of 16 big-endian words. The layout is identical to SHA-1's: the
// message bytes, a 0x80 terminator, zeros, and the bit length in the
// last word (keys this short never touch word 14).
func PackKey(key []byte, block *[16]uint32) error {
	if len(key) > MaxSingleBlockKey {
		return fmt.Errorf("sha256x: key length %d exceeds single block limit %d", len(key), MaxSingleBlockKey)
	}
	*block = [16]uint32{}
	for i, b := range key {
		block[i/4] |= uint32(b) << (24 - 8*uint(i%4))
	}
	block[len(key)/4] |= 0x80 << (24 - 8*uint(len(key)%4))
	block[15] = uint32(len(key)) << 3
	return nil
}

// PackedLen returns the key length encoded in a packed block.
func PackedLen(block *[16]uint32) int { return int(block[15] >> 3) }

// UnpackKey decodes the key bytes from a packed block, appending to dst.
func UnpackKey(dst []byte, block *[16]uint32) []byte {
	n := PackedLen(block)
	for i := 0; i < n; i++ {
		dst = append(dst, byte(block[i/4]>>(24-8*uint(i%4))))
	}
	return dst
}

// SumPacked computes the SHA-256 state words of a packed single-block key.
func SumPacked(block *[16]uint32) [8]uint32 {
	state := iv
	Compress(&state, block)
	return state
}

// StateWords decodes a raw digest into the eight big-endian state words.
func StateWords(digest [Size]byte) [8]uint32 {
	var w [8]uint32
	for i := range w {
		w[i] = uint32(digest[4*i])<<24 | uint32(digest[4*i+1])<<16 |
			uint32(digest[4*i+2])<<8 | uint32(digest[4*i+3])
	}
	return w
}

// DigestBytes encodes state words back into a raw digest.
func DigestBytes(w [8]uint32) [Size]byte {
	var d [Size]byte
	for i, s := range w {
		d[4*i] = byte(s >> 24)
		d[4*i+1] = byte(s >> 16)
		d[4*i+2] = byte(s >> 8)
		d[4*i+3] = byte(s)
	}
	return d
}
