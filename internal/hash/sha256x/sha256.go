// Package sha256x is a from-scratch implementation of the SHA-256 hash
// (FIPS 180-4), built as the substrate for the Bitcoin-style mining
// workload the paper's introduction motivates: an exhaustive search for a
// 32-bit nonce whose double-SHA256 digest has a required number of leading
// zero bits.
//
// crypto/sha256 is used only in tests, as a differential oracle.
package sha256x

import (
	"encoding/binary"
	"math/bits"
)

// Size is the length of a SHA-256 digest in bytes.
const Size = 32

// BlockSize is the SHA-256 block size in bytes.
const BlockSize = 64

var iv = [8]uint32{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
	0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

var k = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

// Compress applies the SHA-256 block transform to state in place.
func Compress(state *[8]uint32, block *[16]uint32) {
	var w [64]uint32
	copy(w[:16], block[:])
	for i := 16; i < 64; i++ {
		s0 := bits.RotateLeft32(w[i-15], -7) ^ bits.RotateLeft32(w[i-15], -18) ^ (w[i-15] >> 3)
		s1 := bits.RotateLeft32(w[i-2], -17) ^ bits.RotateLeft32(w[i-2], -19) ^ (w[i-2] >> 10)
		w[i] = w[i-16] + s0 + w[i-7] + s1
	}

	a, b, c, d, e, f, g, h := state[0], state[1], state[2], state[3], state[4], state[5], state[6], state[7]
	for i := 0; i < 64; i++ {
		s1 := bits.RotateLeft32(e, -6) ^ bits.RotateLeft32(e, -11) ^ bits.RotateLeft32(e, -25)
		ch := (e & f) ^ (^e & g)
		t1 := h + s1 + ch + k[i] + w[i]
		s0 := bits.RotateLeft32(a, -2) ^ bits.RotateLeft32(a, -13) ^ bits.RotateLeft32(a, -22)
		maj := (a & b) ^ (a & c) ^ (b & c)
		t2 := s0 + maj
		h, g, f, e, d, c, b, a = g, f, e, d+t1, c, b, a, t1+t2
	}

	state[0] += a
	state[1] += b
	state[2] += c
	state[3] += d
	state[4] += e
	state[5] += f
	state[6] += g
	state[7] += h
}

// Digest is a streaming SHA-256 computation implementing hash.Hash
// semantics.
type Digest struct {
	state [8]uint32
	buf   [BlockSize]byte
	n     int
	len   uint64
}

// New returns a reset Digest.
func New() *Digest {
	d := new(Digest)
	d.Reset()
	return d
}

// Reset restores the initial state.
func (d *Digest) Reset() {
	d.state = iv
	d.n = 0
	d.len = 0
}

// Size returns the digest length in bytes.
func (d *Digest) Size() int { return Size }

// BlockSize returns the block length in bytes.
func (d *Digest) BlockSize() int { return BlockSize }

// Write absorbs p into the digest. It never returns an error.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize {
			d.compressBuf()
			d.n = 0
		}
	}
	for len(p) >= BlockSize {
		var block [16]uint32
		for i := range block {
			block[i] = binary.BigEndian.Uint32(p[4*i:])
		}
		Compress(&d.state, &block)
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.n = copy(d.buf[:], p)
	}
	return n, nil
}

func (d *Digest) compressBuf() {
	var block [16]uint32
	for i := range block {
		block[i] = binary.BigEndian.Uint32(d.buf[4*i:])
	}
	Compress(&d.state, &block)
}

// Sum appends the digest of the data written so far to b.
func (d *Digest) Sum(b []byte) []byte {
	tmp := *d
	tmp.buf[tmp.n] = 0x80
	for i := tmp.n + 1; i < BlockSize; i++ {
		tmp.buf[i] = 0
	}
	if tmp.n >= 56 {
		tmp.compressBuf()
		for i := range tmp.buf {
			tmp.buf[i] = 0
		}
	}
	binary.BigEndian.PutUint64(tmp.buf[56:], tmp.len<<3)
	tmp.compressBuf()
	var out [Size]byte
	for i, s := range tmp.state {
		binary.BigEndian.PutUint32(out[4*i:], s)
	}
	return append(b, out[:]...)
}

// Sum returns the SHA-256 digest of data.
func Sum(data []byte) [Size]byte {
	d := New()
	d.Write(data)
	var out [Size]byte
	copy(out[:], d.Sum(nil))
	return out
}

// DoubleSum returns SHA256(SHA256(data)), the Bitcoin proof-of-work hash.
func DoubleSum(data []byte) [Size]byte {
	first := Sum(data)
	return Sum(first[:])
}

// LeadingZeroBits counts the number of leading zero bits of a digest,
// reading it as a big-endian integer. Bitcoin-style difficulty requires
// this count to reach a network-provided threshold.
func LeadingZeroBits(digest [Size]byte) int {
	n := 0
	for _, b := range digest {
		if b == 0 {
			n += 8
			continue
		}
		n += bits.LeadingZeros8(b)
		break
	}
	return n
}
