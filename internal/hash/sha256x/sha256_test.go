package sha256x

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"
)

func TestFIPSVectors(t *testing.T) {
	vectors := []struct{ in, want string }{
		{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
		{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
	}
	for _, v := range vectors {
		got := Sum([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("Sum(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

func TestDifferentialAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		n := rng.Intn(260)
		if i < 6 {
			n = []int{55, 56, 63, 64, 65, 128}[i]
		}
		data := make([]byte, n)
		rng.Read(data)
		got := Sum(data)
		want := sha256.Sum256(data)
		if got != want {
			t.Fatalf("len %d: got %x, want %x", n, got, want)
		}
	}
}

func TestStreamingWriteChunks(t *testing.T) {
	data := make([]byte, 500)
	rng := rand.New(rand.NewSource(2))
	rng.Read(data)
	want := Sum(data)
	d := New()
	rest := data
	for len(rest) > 0 {
		n := rng.Intn(70) + 1
		if n > len(rest) {
			n = len(rest)
		}
		d.Write(rest[:n])
		rest = rest[n:]
	}
	if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("chunked = %x, want %x", got, want)
	}
}

func TestDoubleSum(t *testing.T) {
	data := []byte("block header")
	first := sha256.Sum256(data)
	want := sha256.Sum256(first[:])
	if got := DoubleSum(data); got != want {
		t.Errorf("DoubleSum = %x, want %x", got, want)
	}
}

func TestLeadingZeroBits(t *testing.T) {
	var d [Size]byte
	for i := range d {
		d[i] = 0xff
	}
	if LeadingZeroBits(d) != 0 {
		t.Error("all-ones digest should have 0 leading zeros")
	}
	d = [Size]byte{}
	if LeadingZeroBits(d) != 256 {
		t.Error("zero digest should have 256 leading zeros")
	}
	d = [Size]byte{0, 0, 0x01}
	if got := LeadingZeroBits(d); got != 23 {
		t.Errorf("LeadingZeroBits = %d, want 23", got)
	}
	d = [Size]byte{0x0f}
	if got := LeadingZeroBits(d); got != 4 {
		t.Errorf("LeadingZeroBits = %d, want 4", got)
	}
}

func BenchmarkDoubleSum(b *testing.B) {
	data := make([]byte, 80) // Bitcoin block header size
	for i := 0; i < b.N; i++ {
		DoubleSum(data)
	}
}
