package sha256x

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// FuzzPackedDigest cross-checks the packed single-block path against
// crypto/sha256 for arbitrary short keys and verifies unpack round trips.
func FuzzPackedDigest(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("a"))
	f.Add([]byte("Key4SUFF"))
	f.Add(bytes.Repeat([]byte{0xff}, 55))
	f.Fuzz(func(t *testing.T, key []byte) {
		if len(key) > MaxSingleBlockKey {
			key = key[:MaxSingleBlockKey]
		}
		var block [16]uint32
		if err := PackKey(key, &block); err != nil {
			t.Fatal(err)
		}
		if got := UnpackKey(nil, &block); !bytes.Equal(got, key) {
			t.Fatalf("unpack = %x, want %x", got, key)
		}
		got := DigestBytes(SumPacked(&block))
		want := sha256.Sum256(key)
		if got != want {
			t.Fatalf("packed digest %x, want %x", got, want)
		}
		// StateWords and DigestBytes must be inverses through the digest.
		if rt := DigestBytes(StateWords(got)); rt != got {
			t.Fatalf("state-word round trip %x, want %x", rt, got)
		}
	})
}

// TestPackedDifferentialRandom sweeps a deterministic randomized corpus
// of packed candidates through SumPacked and checks every digest against
// crypto/sha256 — the fuzz corpus's always-on little sibling.
func TestPackedDifferentialRandom(t *testing.T) {
	state := uint64(0x2545f4914f6cdd1d)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	key := make([]byte, 0, MaxSingleBlockKey)
	for i := 0; i < 5_000; i++ {
		n := int(next() % (MaxSingleBlockKey + 1))
		key = key[:0]
		for j := 0; j < n; j++ {
			key = append(key, byte(next()))
		}
		var block [16]uint32
		if err := PackKey(key, &block); err != nil {
			t.Fatal(err)
		}
		if got, want := DigestBytes(SumPacked(&block)), sha256.Sum256(key); got != want {
			t.Fatalf("key %x: packed %x, want %x", key, got, want)
		}
	}
}

// TestPackKeyRejectsLongKeys: the single-block packer must refuse keys
// that cannot fit alongside the padding.
func TestPackKeyRejectsLongKeys(t *testing.T) {
	var block [16]uint32
	if err := PackKey(bytes.Repeat([]byte("x"), MaxSingleBlockKey+1), &block); err == nil {
		t.Fatal("expected an error for a 56-byte key")
	}
	if err := PackKey(bytes.Repeat([]byte("x"), MaxSingleBlockKey), &block); err != nil {
		t.Fatalf("55-byte key rejected: %v", err)
	}
}

// TestPackKeyMatchesPadding: for every legal length, the packed block
// must equal the padding crypto/sha256 applies (verified via the digest)
// and PackedLen must report the length back.
func TestPackKeyMatchesPadding(t *testing.T) {
	for n := 0; n <= MaxSingleBlockKey; n++ {
		key := bytes.Repeat([]byte{byte('A' + n%26)}, n)
		var block [16]uint32
		if err := PackKey(key, &block); err != nil {
			t.Fatal(err)
		}
		if got := PackedLen(&block); got != n {
			t.Fatalf("PackedLen = %d, want %d", got, n)
		}
		if got, want := DigestBytes(SumPacked(&block)), sha256.Sum256(key); got != want {
			t.Fatalf("len %d: packed %x, want %x", n, got, want)
		}
	}
}
