package md5x

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRFC1321Vectors checks the appendix A.5 test suite of RFC 1321.
func TestRFC1321Vectors(t *testing.T) {
	vectors := []struct{ in, want string }{
		{"", "d41d8cd98f00b204e9800998ecf8427e"},
		{"a", "0cc175b9c0f1b6a831c399e269772661"},
		{"abc", "900150983cd24fb0d6963f7d28e17f72"},
		{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
		{"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
		{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
			"d174ab98d277d9f5a5611c2c9f419d9f"},
		{"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
			"57edf4a22be3c955ac49da2e2107b67a"},
	}
	for _, v := range vectors {
		got := Sum([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("Sum(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

// TestDifferentialAgainstStdlib fuzzes our implementation against
// crypto/md5 over random lengths, including multi-block messages and
// block-boundary cases.
func TestDifferentialAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		n := rng.Intn(300)
		switch i {
		case 0:
			n = 55
		case 1:
			n = 56
		case 2:
			n = 63
		case 3:
			n = 64
		case 4:
			n = 65
		case 5:
			n = 119
		case 6:
			n = 128
		}
		data := make([]byte, n)
		rng.Read(data)
		got := Sum(data)
		want := md5.Sum(data)
		if got != want {
			t.Fatalf("len %d: got %x, want %x", n, got, want)
		}
	}
}

// TestStreamingWriteChunks verifies that arbitrary Write segmentation does
// not change the digest.
func TestStreamingWriteChunks(t *testing.T) {
	data := make([]byte, 1000)
	rng := rand.New(rand.NewSource(2))
	rng.Read(data)
	want := Sum(data)

	d := New()
	rest := data
	for len(rest) > 0 {
		n := rng.Intn(100) + 1
		if n > len(rest) {
			n = len(rest)
		}
		d.Write(rest[:n])
		rest = rest[n:]
	}
	got := d.Sum(nil)
	if !bytes.Equal(got, want[:]) {
		t.Errorf("chunked = %x, want %x", got, want)
	}
	// Sum must be non-destructive.
	if again := d.Sum(nil); !bytes.Equal(again, want[:]) {
		t.Errorf("second Sum = %x, want %x", again, want)
	}
}

func TestDigestReset(t *testing.T) {
	d := New()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum([]byte("abc"))
	if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("after reset: %x, want %x", got, want)
	}
	if d.Size() != 16 || d.BlockSize() != 64 {
		t.Error("Size/BlockSize wrong")
	}
}

func TestStateWordsRoundTrip(t *testing.T) {
	sum := Sum([]byte("roundtrip"))
	if DigestBytes(StateWords(sum)) != sum {
		t.Error("StateWords/DigestBytes not inverse")
	}
}

// TestMsgIndex verifies the round permutations and the property the
// reversal trick depends on: m[0] is read by steps 0, 19, 41, 48 only.
func TestMsgIndex(t *testing.T) {
	var uses []int
	for i := 0; i < 64; i++ {
		if MsgIndex(i) == 0 {
			uses = append(uses, i)
		}
	}
	want := []int{0, 19, 41, 48}
	if len(uses) != 4 {
		t.Fatalf("m[0] used at %v", uses)
	}
	for k := range want {
		if uses[k] != want[k] {
			t.Fatalf("m[0] used at %v, want %v", uses, want)
		}
	}
	// Each round reads every message word exactly once.
	for round := 0; round < 4; round++ {
		var seen [16]bool
		for i := 16 * round; i < 16*(round+1); i++ {
			g := MsgIndex(i)
			if seen[g] {
				t.Fatalf("round %d reads m[%d] twice", round, g)
			}
			seen[g] = true
		}
	}
}

// TestInvStepInvertsStep is the round-trip property of the reversal.
func TestInvStepInvertsStep(t *testing.T) {
	f := func(i8 uint8, a, b, c, d, m uint32) bool {
		i := int(i8) % 64
		na, nb, nc, nd := Step(i, a, b, c, d, m)
		pa, pb, pc, pd := InvStep(i, na, nb, nc, nd, m)
		return pa == a && pb == b && pc == c && pd == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStepMatchesCompress(t *testing.T) {
	var block [16]uint32
	rng := rand.New(rand.NewSource(3))
	for i := range block {
		block[i] = rng.Uint32()
	}
	a, b, c, d := iv[0], iv[1], iv[2], iv[3]
	for i := 0; i < 64; i++ {
		a, b, c, d = Step(i, a, b, c, d, block[MsgIndex(i)])
	}
	state := iv
	Compress(&state, &block)
	if state[0] != iv[0]+a || state[1] != iv[1]+b || state[2] != iv[2]+c || state[3] != iv[3]+d {
		t.Error("Step-by-step walk disagrees with Compress")
	}
}
