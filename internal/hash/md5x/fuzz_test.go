package md5x

import (
	"bytes"
	"crypto/md5"
	"testing"
)

// FuzzPackedDigest cross-checks the packed single-block path against
// crypto/md5 for arbitrary short keys and verifies unpack round trips.
func FuzzPackedDigest(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("a"))
	f.Add([]byte("Key4SUFF"))
	f.Add(bytes.Repeat([]byte{0xff}, 55))
	f.Fuzz(func(t *testing.T, key []byte) {
		if len(key) > MaxSingleBlockKey {
			key = key[:MaxSingleBlockKey]
		}
		var block [16]uint32
		if err := PackKey(key, &block); err != nil {
			t.Fatal(err)
		}
		if got := UnpackKey(nil, &block); !bytes.Equal(got, key) {
			t.Fatalf("unpack = %x, want %x", got, key)
		}
		got := DigestBytes(SumPacked(&block))
		want := md5.Sum(key)
		if got != want {
			t.Fatalf("packed digest %x, want %x", got, want)
		}
		// The searcher built on this target must accept exactly this key.
		s := NewSearcher(want)
		if !s.Test(key) {
			t.Fatal("searcher rejected its own key")
		}
	})
}

// FuzzStreamingMatchesStdlib checks the multi-block streaming path.
func FuzzStreamingMatchesStdlib(f *testing.F) {
	f.Add([]byte("hello"), 3)
	f.Add(bytes.Repeat([]byte("x"), 200), 64)
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		d := New()
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			d.Write(data[off:end])
		}
		want := md5.Sum(data)
		if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
			t.Fatalf("streamed %x, want %x", got, want)
		}
	})
}
