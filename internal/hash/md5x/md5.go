// Package md5x is a from-scratch implementation of the MD5 message-digest
// algorithm (RFC 1321) structured for exhaustive key search.
//
// Beyond a conventional streaming digest, the package exposes the internals
// the paper's optimized kernels need (Section V):
//
//   - Compress, the raw 64-step block transform;
//   - PackKey, the single-block packed-uint32 representation used for keys
//     of at most 55 bytes;
//   - ReverseContext, the BarsWF "reversal" optimization: the last 15 steps
//     of MD5 do not read message word m[0], so for candidate runs in which
//     only m[0] varies they are inverted once starting from the target
//     digest, and every candidate runs only the first 49 steps forward —
//     with early-exit comparisons after steps 45, 46, 47 and 48.
//
// The implementation is pure Go and depends only on the standard library;
// crypto/md5 is used exclusively in tests, as a differential oracle.
package md5x

import "math/bits"

// Size is the length of an MD5 digest in bytes.
const Size = 16

// BlockSize is the MD5 block size in bytes.
const BlockSize = 64

// iv is the standard MD5 initial state (RFC 1321 section 3.3).
var iv = [4]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}

// T holds the 64 sine-derived additive constants of RFC 1321 (section 3.4).
var T = [64]uint32{
	0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
	0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
	0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
	0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
	0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
	0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
	0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
	0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
	0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
	0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
	0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
	0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
	0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
	0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
	0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
	0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
}

// shifts holds the per-step rotation amounts (RFC 1321 section 3.4).
var shifts = [64]uint{
	7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
	5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
	4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
	6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
}

// MsgIndex returns the message-word index g(i) read by step i (0-based),
// per RFC 1321: i, (5i+1) mod 16, (3i+5) mod 16, (7i) mod 16 across the
// four rounds. Step 48 is the only step of the final 16 that reads m[0],
// which is what makes the 15-step reversal possible.
func MsgIndex(i int) int {
	switch {
	case i < 16:
		return i
	case i < 32:
		return (5*i + 1) % 16
	case i < 48:
		return (3*i + 5) % 16
	default:
		return (7 * i) % 16
	}
}

// Shift returns the rotation amount of step i.
func Shift(i int) uint { return shifts[i] }

// IV returns the standard initial state.
func IV() [4]uint32 { return iv }

func fF(b, c, d uint32) uint32 { return (b & c) | (^b & d) }
func fG(b, c, d uint32) uint32 { return (b & d) | (c & ^d) }
func fH(b, c, d uint32) uint32 { return b ^ c ^ d }
func fI(b, c, d uint32) uint32 { return c ^ (b | ^d) }

// roundFunc returns the value of the round function for step i.
func roundFunc(i int, b, c, d uint32) uint32 {
	switch {
	case i < 16:
		return fF(b, c, d)
	case i < 32:
		return fG(b, c, d)
	case i < 48:
		return fH(b, c, d)
	default:
		return fI(b, c, d)
	}
}

// Step applies MD5 step i to the rotating register file, returning the new
// registers. The register naming follows RFC 1321's (a,b,c,d) convention
// where a is the slot overwritten by the step.
func Step(i int, a, b, c, d, m uint32) (uint32, uint32, uint32, uint32) {
	a += roundFunc(i, b, c, d) + m + T[i]
	a = b + bits.RotateLeft32(a, int(shifts[i]))
	return d, a, b, c // new (a, b, c, d)
}

// InvStep inverts MD5 step i: given the register file after the step and
// the message word it consumed, it returns the register file before it.
func InvStep(i int, a, b, c, d, m uint32) (uint32, uint32, uint32, uint32) {
	// Forward: (a', b', c', d') = (d, b + rotl(a + f(b,c,d) + m + T, s), b, c)
	pb, pc, pd := c, d, a
	pa := bits.RotateLeft32(b-pb, -int(shifts[i])) - roundFunc(i, pb, pc, pd) - m - T[i]
	return pa, pb, pc, pd
}

// Compress applies the MD5 block transform: it updates state in place with
// the 64-step compression of one 16-word little-endian block.
func Compress(state *[4]uint32, block *[16]uint32) {
	a, b, c, d := state[0], state[1], state[2], state[3]

	// Round 1 (F), steps 0..15.
	for i := 0; i < 16; i++ {
		t := a + fF(b, c, d) + block[i] + T[i]
		a, b, c, d = d, b+bits.RotateLeft32(t, int(shifts[i])), b, c
	}
	// Round 2 (G), steps 16..31.
	for i := 16; i < 32; i++ {
		t := a + fG(b, c, d) + block[(5*i+1)%16] + T[i]
		a, b, c, d = d, b+bits.RotateLeft32(t, int(shifts[i])), b, c
	}
	// Round 3 (H), steps 32..47.
	for i := 32; i < 48; i++ {
		t := a + fH(b, c, d) + block[(3*i+5)%16] + T[i]
		a, b, c, d = d, b+bits.RotateLeft32(t, int(shifts[i])), b, c
	}
	// Round 4 (I), steps 48..63.
	for i := 48; i < 64; i++ {
		t := a + fI(b, c, d) + block[(7*i)%16] + T[i]
		a, b, c, d = d, b+bits.RotateLeft32(t, int(shifts[i])), b, c
	}

	state[0] += a
	state[1] += b
	state[2] += c
	state[3] += d
}

// Sum returns the MD5 digest of data.
func Sum(data []byte) [Size]byte {
	var d Digest
	d.Reset()
	d.Write(data)
	var out [Size]byte
	d.sumInto(&out)
	return out
}
