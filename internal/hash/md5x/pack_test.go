package md5x

import (
	"crypto/md5"
	"math/rand"
	"testing"
)

// TestPackKeyMatchesPadding checks that compressing a packed key block
// yields exactly the standard MD5 digest, for every single-block length.
func TestPackKeyMatchesPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= MaxSingleBlockKey; n++ {
		key := make([]byte, n)
		for i := range key {
			key[i] = byte(rng.Intn(256))
		}
		var block [16]uint32
		if err := PackKey(key, &block); err != nil {
			t.Fatalf("PackKey len %d: %v", n, err)
		}
		got := DigestBytes(SumPacked(&block))
		want := md5.Sum(key)
		if got != want {
			t.Fatalf("len %d: packed digest %x, want %x", n, got, want)
		}
	}
}

func TestPackKeyTooLong(t *testing.T) {
	var block [16]uint32
	if err := PackKey(make([]byte, 56), &block); err == nil {
		t.Error("want error for 56-byte key")
	}
}

func TestPackedLenAndUnpack(t *testing.T) {
	key := []byte("S3cret!")
	var block [16]uint32
	if err := PackKey(key, &block); err != nil {
		t.Fatal(err)
	}
	if PackedLen(&block) != len(key) {
		t.Errorf("PackedLen = %d, want %d", PackedLen(&block), len(key))
	}
	if got := UnpackKey(nil, &block); string(got) != string(key) {
		t.Errorf("UnpackKey = %q", got)
	}
}

func TestSetWord0Bytes(t *testing.T) {
	var block [16]uint32
	if err := PackKey([]byte("abcdWXYZ"), &block); err != nil {
		t.Fatal(err)
	}
	SetWord0Bytes(&block, 'e', 'f', 'g', 'h')
	if got := UnpackKey(nil, &block); string(got) != "efghWXYZ" {
		t.Errorf("after SetWord0Bytes: %q", got)
	}
	got := DigestBytes(SumPacked(&block))
	want := md5.Sum([]byte("efghWXYZ"))
	if got != want {
		t.Errorf("digest %x, want %x", got, want)
	}
}
