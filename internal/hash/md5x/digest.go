package md5x

import "encoding/binary"

// Digest is a streaming MD5 computation implementing hash.Hash semantics
// (Write never fails, Sum appends, Reset restarts). The zero value must be
// Reset before use; New returns one ready to go.
type Digest struct {
	state [4]uint32
	buf   [BlockSize]byte
	n     int    // bytes buffered in buf
	len   uint64 // total message length in bytes
}

// New returns a reset Digest.
func New() *Digest {
	d := new(Digest)
	d.Reset()
	return d
}

// Reset restores the initial state.
func (d *Digest) Reset() {
	d.state = iv
	d.n = 0
	d.len = 0
}

// Size returns the digest length in bytes.
func (d *Digest) Size() int { return Size }

// BlockSize returns the block length in bytes.
func (d *Digest) BlockSize() int { return BlockSize }

// Write absorbs p into the digest. It never returns an error.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize {
			d.compressBuf()
			d.n = 0
		}
	}
	for len(p) >= BlockSize {
		var block [16]uint32
		for i := range block {
			block[i] = binary.LittleEndian.Uint32(p[4*i:])
		}
		Compress(&d.state, &block)
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.n = copy(d.buf[:], p)
	}
	return n, nil
}

func (d *Digest) compressBuf() {
	var block [16]uint32
	for i := range block {
		block[i] = binary.LittleEndian.Uint32(d.buf[4*i:])
	}
	Compress(&d.state, &block)
}

// Sum appends the digest of the data written so far to b and returns the
// extended slice. It does not change the underlying state.
func (d *Digest) Sum(b []byte) []byte {
	var out [Size]byte
	d.sumInto(&out)
	return append(b, out[:]...)
}

func (d *Digest) sumInto(out *[Size]byte) {
	tmp := *d // copy so Sum is non-destructive
	// Padding: 0x80, zeros to 56 mod 64, then the bit length little-endian.
	tmp.buf[tmp.n] = 0x80
	for i := tmp.n + 1; i < BlockSize; i++ {
		tmp.buf[i] = 0
	}
	if tmp.n >= 56 {
		tmp.compressBuf()
		for i := range tmp.buf {
			tmp.buf[i] = 0
		}
	}
	binary.LittleEndian.PutUint64(tmp.buf[56:], tmp.len<<3)
	tmp.compressBuf()
	for i, s := range tmp.state {
		binary.LittleEndian.PutUint32(out[4*i:], s)
	}
}

// StateWords decodes a 16-byte digest into the four little-endian state
// words (the representation the search kernels compare against).
func StateWords(digest [Size]byte) [4]uint32 {
	var w [4]uint32
	for i := range w {
		w[i] = binary.LittleEndian.Uint32(digest[4*i:])
	}
	return w
}

// DigestBytes encodes four state words as a 16-byte digest.
func DigestBytes(w [4]uint32) [Size]byte {
	var out [Size]byte
	for i := range w {
		binary.LittleEndian.PutUint32(out[4*i:], w[i])
	}
	return out
}
