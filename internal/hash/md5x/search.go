package md5x

import "math/bits"

// ReverseSteps is the number of trailing MD5 steps that never read message
// word m[0] and can therefore be inverted once per candidate run instead of
// executed once per candidate (Section V of the paper; the trick originates
// in the BarsWF cracker).
const ReverseSteps = 15

// ForwardSteps is the number of steps a reversal-optimized candidate test
// executes: 64 total minus the 15 reversed ones.
const ForwardSteps = 64 - ReverseSteps

// ReverseContext holds the target digest reversed through the last 15 MD5
// steps for a fixed message template. Only message word 0 may vary between
// candidates; words 1..15 (key suffix, padding, length) are baked in.
//
// A ReverseContext is not safe for concurrent use; each worker owns one.
type ReverseContext struct {
	block [16]uint32 // message template; word 0 is overwritten per test
	rev   [4]uint32  // register file after step 48, derived from the target
}

// NewReverseContext builds a reversal context for the given target state
// words (little-endian decoding of the digest) and message template.
// Word 0 of the template is ignored.
func NewReverseContext(target [4]uint32, template *[16]uint32) *ReverseContext {
	r := &ReverseContext{block: *template}
	// Undo the final feed-forward addition of the IV...
	a := target[0] - iv[0]
	b := target[1] - iv[1]
	c := target[2] - iv[2]
	d := target[3] - iv[3]
	// ...then invert steps 63 down to 49. None of them reads m[0]
	// (MsgIndex(i) != 0 for i in [49,63]); step 48 is the first that does.
	for i := 63; i >= 64-ReverseSteps; i-- {
		a, b, c, d = InvStep(i, a, b, c, d, r.block[MsgIndex(i)])
	}
	r.rev = [4]uint32{a, b, c, d}
	return r
}

// Reversed returns the register file after step 48 implied by the target.
func (r *ReverseContext) Reversed() [4]uint32 { return r.rev }

// Test reports whether the key whose packed word 0 is m0 (and whose words
// 1..15 match the template) hashes to the target. It executes at most 49
// forward steps, with early-exit comparisons after steps 45, 46, 47 and 48:
// each of those steps produces one register of the meet-in-the-middle state,
// so a mismatching candidate usually dies after 46 steps.
func (r *ReverseContext) Test(m0 uint32) bool {
	m := &r.block
	m[0] = m0
	a, b, c, d := iv[0], iv[1], iv[2], iv[3]

	//keyvet:hotloop
	for i := 0; i < 16; i++ {
		t := a + fF(b, c, d) + m[i] + T[i]
		a, b, c, d = d, b+bits.RotateLeft32(t, int(shifts[i])), b, c
	}
	//keyvet:hotloop
	for i := 16; i < 32; i++ {
		t := a + fG(b, c, d) + m[(5*i+1)%16] + T[i]
		a, b, c, d = d, b+bits.RotateLeft32(t, int(shifts[i])), b, c
	}
	//keyvet:hotloop
	for i := 32; i < 46; i++ {
		t := a + fH(b, c, d) + m[(3*i+5)%16] + T[i]
		a, b, c, d = d, b+bits.RotateLeft32(t, int(shifts[i])), b, c
	}
	// After step 45 the b register equals the A component of the state
	// after step 48 (it is shifted B->C->D->A by the next three steps).
	if b != r.rev[0] {
		return false
	}
	//keyvet:hotloop
	for i := 46; i < 48; i++ {
		t := a + fH(b, c, d) + m[(3*i+5)%16] + T[i]
		a, b, c, d = d, b+bits.RotateLeft32(t, int(shifts[i])), b, c
		// Step 46 produces the D component, step 47 the C component.
		if b != r.rev[49-i] {
			return false
		}
	}
	// Step 48 (the only late step reading m[0]) produces the B component.
	t := a + fI(b, c, d) + m[0] + T[48]
	b = b + bits.RotateLeft32(t, int(shifts[48]))
	return b == r.rev[1]
}

// Searcher tests candidate keys against a fixed MD5 target, transparently
// maintaining a ReverseContext across candidates that share the same packed
// suffix (words 1..15). With the prefix-major enumeration order of the
// paper's equation (4), the context is rebuilt only once every N^4
// candidates. Not safe for concurrent use.
type Searcher struct {
	target  [4]uint32
	scratch [16]uint32
	rev     *ReverseContext
	haveCtx bool
}

// NewSearcher builds a searcher for a raw 16-byte MD5 digest.
func NewSearcher(digest [Size]byte) *Searcher {
	return &Searcher{target: StateWords(digest)}
}

// NewSearcherWords builds a searcher from pre-decoded state words.
func NewSearcherWords(target [4]uint32) *Searcher {
	return &Searcher{target: target}
}

// Test reports whether key hashes to the target. Keys longer than 55 bytes
// fall back to the streaming implementation.
func (s *Searcher) Test(key []byte) bool {
	if len(key) > MaxSingleBlockKey {
		sum := Sum(key)
		return StateWords(sum) == s.target
	}
	if err := PackKey(key, &s.scratch); err != nil {
		return false
	}
	if !s.haveCtx || !sameSuffix(&s.rev.block, &s.scratch) {
		s.rev = NewReverseContext(s.target, &s.scratch)
		s.haveCtx = true
	}
	return s.rev.Test(s.scratch[0])
}

// TestPlain is the unoptimized baseline: full 64-step hash plus digest
// comparison, no reversal, no early exit. It exists for the ablation
// benchmarks of DESIGN.md (§5.2).
func (s *Searcher) TestPlain(key []byte) bool {
	if len(key) > MaxSingleBlockKey {
		sum := Sum(key)
		return StateWords(sum) == s.target
	}
	if err := PackKey(key, &s.scratch); err != nil {
		return false
	}
	return SumPacked(&s.scratch) == s.target
}

func sameSuffix(a, b *[16]uint32) bool {
	for i := 1; i < 16; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
