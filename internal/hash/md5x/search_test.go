package md5x

import (
	"crypto/md5"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestReverseContextRoundTrip: reversing the last 15 steps of a forward
// computation must land on the forward state after step 48.
func TestReverseContextRoundTrip(t *testing.T) {
	f := func(m0 uint32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var block [16]uint32
		for i := range block {
			block[i] = rng.Uint32()
		}
		block[0] = m0

		// Forward walk recording the state after step 48.
		a, b, c, d := iv[0], iv[1], iv[2], iv[3]
		var mid [4]uint32
		for i := 0; i < 64; i++ {
			a, b, c, d = Step(i, a, b, c, d, block[MsgIndex(i)])
			if i == 48 {
				mid = [4]uint32{a, b, c, d}
			}
		}
		target := [4]uint32{iv[0] + a, iv[1] + b, iv[2] + c, iv[3] + d}

		rc := NewReverseContext(target, &block)
		return rc.Reversed() == mid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestReverseContextTest: the 49-step early-exit test must accept exactly
// the matching word 0 and reject others.
func TestReverseContextTest(t *testing.T) {
	key := []byte("Pa55word")
	var block [16]uint32
	if err := PackKey(key, &block); err != nil {
		t.Fatal(err)
	}
	target := StateWords(md5.Sum(key))
	rc := NewReverseContext(target, &block)

	if !rc.Test(block[0]) {
		t.Fatal("matching candidate rejected")
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		w := rng.Uint32()
		if w == block[0] {
			continue
		}
		if rc.Test(w) {
			t.Fatalf("false positive for word %08x", w)
		}
	}
}

func TestSearcherFindsKey(t *testing.T) {
	for _, key := range []string{"", "a", "ab", "abc", "abcd", "abcde", "Pa55word!", "0123456789abcdef0123"} {
		digest := md5.Sum([]byte(key))
		s := NewSearcher(digest)
		if !s.Test([]byte(key)) {
			t.Errorf("Searcher rejected its own key %q", key)
		}
		if !s.TestPlain([]byte(key)) {
			t.Errorf("TestPlain rejected its own key %q", key)
		}
		if s.Test([]byte(key + "x")) {
			t.Errorf("Searcher accepted wrong key for %q", key)
		}
	}
}

// TestSearcherSuffixSwitch drives the searcher across keys with different
// suffixes and lengths, forcing reverse-context rebuilds, and checks it
// against the oracle each time.
func TestSearcherSuffixSwitch(t *testing.T) {
	target := md5.Sum([]byte("wxyzSUFF"))
	s := NewSearcher(target)
	keys := []string{
		"aaaaSUFF", "baaaSUFF", "wxyzSUFF", // same suffix run
		"aaaaTUFF",          // suffix change
		"wxyzSUFF",          // back again
		"short", "wxyz", "", // length changes
		"wxyzSUFFlonger", "wxyzSUFF",
	}
	for _, k := range keys {
		want := md5.Sum([]byte(k)) == target
		if got := s.Test([]byte(k)); got != want {
			t.Errorf("Test(%q) = %v, want %v", k, got, want)
		}
	}
}

// TestSearcherLongKeys exercises the multi-block fallback.
func TestSearcherLongKeys(t *testing.T) {
	long := make([]byte, 80)
	for i := range long {
		long[i] = byte('A' + i%26)
	}
	s := NewSearcher(md5.Sum(long))
	if !s.Test(long) {
		t.Error("long key rejected")
	}
	long[79]++
	if s.Test(long) {
		t.Error("mutated long key accepted")
	}
}

// TestQuickSearcherAgreesWithOracle is the main correctness property of the
// optimized path: for random keys and random targets, Test agrees with a
// full hash comparison.
func TestQuickSearcherAgreesWithOracle(t *testing.T) {
	f := func(keyBytes []byte, targetSeed []byte) bool {
		if len(keyBytes) > 55 {
			keyBytes = keyBytes[:55]
		}
		target := md5.Sum(targetSeed)
		s := NewSearcher(target)
		want := md5.Sum(keyBytes) == target
		return s.Test(keyBytes) == want && s.TestPlain(keyBytes) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTestReversed(b *testing.B) {
	key := []byte("aaaaaaaa")
	target := md5.Sum([]byte("zzzzzzzz"))
	s := NewSearcher(target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Test(key)
	}
}

func BenchmarkTestPlain(b *testing.B) {
	key := []byte("aaaaaaaa")
	target := md5.Sum([]byte("zzzzzzzz"))
	s := NewSearcher(target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TestPlain(key)
	}
}

func BenchmarkSum(b *testing.B) {
	data := []byte("The quick brown fox jumps over the lazy dog")
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum(data)
	}
}
