package md5x

import "fmt"

// MaxSingleBlockKey is the longest key that fits a single MD5/SHA1 block
// after padding: 64 bytes minus 1 pad byte minus 8 length bytes.
const MaxSingleBlockKey = 55

// PackKey encodes a key of at most 55 bytes as a single padded MD5 block of
// 16 little-endian words: the key bytes, a 0x80 terminator, zeros, and the
// bit length in word 14. This is the packed-uint32 representation the
// paper's GPU kernel keeps in registers (Section IV-A): strings are aligned
// to integer boundaries and padded with the EOF byte.
func PackKey(key []byte, block *[16]uint32) error {
	if len(key) > MaxSingleBlockKey {
		return fmt.Errorf("md5x: key length %d exceeds single block limit %d", len(key), MaxSingleBlockKey)
	}
	*block = [16]uint32{}
	for i, b := range key {
		block[i/4] |= uint32(b) << (8 * uint(i%4))
	}
	block[len(key)/4] |= 0x80 << (8 * uint(len(key)%4))
	block[14] = uint32(len(key)) << 3
	return nil
}

// PackedLen returns the key length encoded in a packed block.
func PackedLen(block *[16]uint32) int { return int(block[14] >> 3) }

// UnpackKey decodes the key bytes from a packed block, appending to dst.
func UnpackKey(dst []byte, block *[16]uint32) []byte {
	n := PackedLen(block)
	for i := 0; i < n; i++ {
		dst = append(dst, byte(block[i/4]>>(8*uint(i%4))))
	}
	return dst
}

// SumPacked computes the MD5 state words of a packed single-block key.
func SumPacked(block *[16]uint32) [4]uint32 {
	state := iv
	Compress(&state, block)
	return state
}

// SetWord0Bytes overwrites the first four key bytes of a packed block.
// It is the mutation a reversal-optimized thread applies per candidate:
// everything else in the block stays constant.
func SetWord0Bytes(block *[16]uint32, b0, b1, b2, b3 byte) {
	block[0] = uint32(b0) | uint32(b1)<<8 | uint32(b2)<<16 | uint32(b3)<<24
}
