package sha1x

import (
	"fmt"
	"math/bits"
)

// MaxSingleBlockKey is the longest key that fits a single SHA1 block.
const MaxSingleBlockKey = 55

// PackKey encodes a key of at most 55 bytes as a single padded SHA1 block
// of 16 big-endian words.
func PackKey(key []byte, block *[16]uint32) error {
	if len(key) > MaxSingleBlockKey {
		return fmt.Errorf("sha1x: key length %d exceeds single block limit %d", len(key), MaxSingleBlockKey)
	}
	*block = [16]uint32{}
	for i, b := range key {
		block[i/4] |= uint32(b) << (24 - 8*uint(i%4))
	}
	block[len(key)/4] |= 0x80 << (24 - 8*uint(len(key)%4))
	block[15] = uint32(len(key)) << 3
	return nil
}

// PackedLen returns the key length encoded in a packed block.
func PackedLen(block *[16]uint32) int { return int(block[15] >> 3) }

// UnpackKey decodes the key bytes from a packed block, appending to dst.
func UnpackKey(dst []byte, block *[16]uint32) []byte {
	n := PackedLen(block)
	for i := 0; i < n; i++ {
		dst = append(dst, byte(block[i/4]>>(24-8*uint(i%4))))
	}
	return dst
}

// SumPacked computes the SHA1 state words of a packed single-block key.
func SumPacked(block *[16]uint32) [5]uint32 {
	state := iv
	Compress(&state, block)
	return state
}

// Searcher tests candidate keys against a fixed SHA1 target. The final
// feed-forward additions are hoisted: the kernel compares the raw register
// file after step 79 against target−IV, with early-exit checks starting at
// step 75 (each of the last five steps pins one target register, because
// the register file only shifts afterwards). Not safe for concurrent use.
type Searcher struct {
	// mid is target−IV: the register file the compression must reach.
	mid [5]uint32
	// e76..b79 are the early-exit reference values: mid rotated back to the
	// register that first determines each component.
	e76, d77, c78 uint32
	scratch       [16]uint32
}

// NewSearcher builds a searcher for a raw 20-byte SHA1 digest.
func NewSearcher(digest [Size]byte) *Searcher {
	return NewSearcherWords(StateWords(digest))
}

// NewSearcherWords builds a searcher from pre-decoded state words.
func NewSearcherWords(target [5]uint32) *Searcher {
	s := &Searcher{}
	for i := range s.mid {
		s.mid[i] = target[i] - iv[i]
	}
	// E80 = rotl30(a after step 75); D80 = rotl30(a after 76);
	// C80 = rotl30(a after 77); B80 = a after 78; A80 = a after 79.
	s.e76 = bits.RotateLeft32(s.mid[4], -30)
	s.d77 = bits.RotateLeft32(s.mid[3], -30)
	s.c78 = bits.RotateLeft32(s.mid[2], -30)
	return s
}

// TestPacked reports whether the packed single-block key hashes to the
// target, using the early-exit kernel.
func (s *Searcher) TestPacked(block *[16]uint32) bool {
	var w [80]uint32
	copy(w[:16], block[:])
	Expand(&w)

	a, b, c, d, e := iv[0], iv[1], iv[2], iv[3], iv[4]
	//keyvet:hotloop
	for i := 0; i < 20; i++ {
		t := bits.RotateLeft32(a, 5) + fCh(b, c, d) + e + w[i] + K[0]
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}
	//keyvet:hotloop
	for i := 20; i < 40; i++ {
		t := bits.RotateLeft32(a, 5) + fParity(b, c, d) + e + w[i] + K[1]
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}
	//keyvet:hotloop
	for i := 40; i < 60; i++ {
		t := bits.RotateLeft32(a, 5) + fMaj(b, c, d) + e + w[i] + K[2]
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}
	//keyvet:hotloop
	for i := 60; i < 76; i++ {
		t := bits.RotateLeft32(a, 5) + fParity(b, c, d) + e + w[i] + K[3]
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}
	// a now holds the register produced by step 75, which the remaining
	// four steps shift into the E slot of the final state.
	if a != s.e76 {
		return false
	}
	t := bits.RotateLeft32(a, 5) + fParity(b, c, d) + e + w[76] + K[3]
	a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	if a != s.d77 {
		return false
	}
	t = bits.RotateLeft32(a, 5) + fParity(b, c, d) + e + w[77] + K[3]
	a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	if a != s.c78 {
		return false
	}
	t = bits.RotateLeft32(a, 5) + fParity(b, c, d) + e + w[78] + K[3]
	a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	if a != s.mid[1] {
		return false
	}
	t = bits.RotateLeft32(a, 5) + fParity(b, c, d) + e + w[79] + K[3]
	return t == s.mid[0]
}

// Test reports whether key hashes to the target. Keys longer than 55 bytes
// fall back to the streaming implementation.
func (s *Searcher) Test(key []byte) bool {
	if len(key) > MaxSingleBlockKey {
		sum := Sum(key)
		got := StateWords(sum)
		for i := range got {
			if got[i] != s.mid[i]+iv[i] {
				return false
			}
		}
		return true
	}
	if err := PackKey(key, &s.scratch); err != nil {
		return false
	}
	return s.TestPacked(&s.scratch)
}

// TestPlain is the unoptimized baseline: full 80 steps plus feed-forward
// and digest comparison. It exists for ablation benchmarks.
func (s *Searcher) TestPlain(key []byte) bool {
	if len(key) > MaxSingleBlockKey {
		return s.Test(key)
	}
	if err := PackKey(key, &s.scratch); err != nil {
		return false
	}
	got := SumPacked(&s.scratch)
	for i := range got {
		if got[i] != s.mid[i]+iv[i] {
			return false
		}
	}
	return true
}
