package sha1x

import (
	"bytes"
	"crypto/sha1"
	"testing"
)

// FuzzPackedDigest cross-checks the packed single-block path against
// crypto/sha1 for arbitrary short keys and verifies unpack round trips.
func FuzzPackedDigest(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("a"))
	f.Add([]byte("Key4SUFF"))
	f.Add(bytes.Repeat([]byte{0xff}, 55))
	f.Fuzz(func(t *testing.T, key []byte) {
		if len(key) > MaxSingleBlockKey {
			key = key[:MaxSingleBlockKey]
		}
		var block [16]uint32
		if err := PackKey(key, &block); err != nil {
			t.Fatal(err)
		}
		if got := UnpackKey(nil, &block); !bytes.Equal(got, key) {
			t.Fatalf("unpack = %x, want %x", got, key)
		}
		got := DigestBytes(SumPacked(&block))
		want := sha1.Sum(key)
		if got != want {
			t.Fatalf("packed digest %x, want %x", got, want)
		}
		// Both the early-exit searcher and the plain baseline built on
		// this target must accept exactly this key.
		s := NewSearcher(want)
		if !s.Test(key) {
			t.Fatal("searcher rejected its own key")
		}
		if !s.TestPlain(key) {
			t.Fatal("plain searcher rejected its own key")
		}
	})
}

// FuzzStreamingMatchesStdlib checks the multi-block streaming path.
func FuzzStreamingMatchesStdlib(f *testing.F) {
	f.Add([]byte("hello"), 3)
	f.Add(bytes.Repeat([]byte("x"), 200), 64)
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		d := New()
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			d.Write(data[off:end])
		}
		want := sha1.Sum(data)
		if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
			t.Fatalf("streamed %x, want %x", got, want)
		}
	})
}

// TestSearcherDifferentialRandom sweeps randomized packed candidates
// through the early-exit searcher and checks every verdict against
// crypto/sha1. Non-matching keys must be rejected at some early-exit
// step, matching keys accepted.
func TestSearcherDifferentialRandom(t *testing.T) {
	target := sha1.Sum([]byte("bcd"))
	s := NewSearcher(target)
	// Deterministic xorshift corpus; no seeding dependency on the clock.
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	key := make([]byte, 0, 8)
	for i := 0; i < 20_000; i++ {
		n := int(next() % 6)
		key = key[:0]
		for j := 0; j < n; j++ {
			key = append(key, byte('a'+next()%26))
		}
		got := s.Test(key)
		want := sha1.Sum(key) == target
		if got != want {
			t.Fatalf("key %q: searcher says %v, crypto/sha1 says %v", key, got, want)
		}
	}
	if !s.Test([]byte("bcd")) {
		t.Fatal("searcher rejected the planted key")
	}
}
