// Package sha1x is a from-scratch implementation of the SHA1 secure hash
// algorithm (RFC 3174) structured for exhaustive key search, mirroring the
// md5x package: a streaming digest, a raw block transform, a packed
// single-block key representation, and an early-exit search kernel.
//
// SHA1's message schedule expands every input word into the late rounds, so
// the 15-step reversal trick of MD5 does not transfer; the paper applies
// "the same kind of analysis" (Section V) and the corresponding kernel here
// implements the transferable parts: packed registers, hoisting the final
// feed-forward additions out of the loop by comparing against target−IV,
// and early-exit comparisons over the last five steps.
//
// crypto/sha1 is used only in tests, as a differential oracle.
package sha1x

import (
	"encoding/binary"
	"math/bits"
)

// Size is the length of a SHA1 digest in bytes.
const Size = 20

// BlockSize is the SHA1 block size in bytes.
const BlockSize = 64

// iv is the standard SHA1 initial state (RFC 3174 section 6.1).
var iv = [5]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0}

// K holds the four stage constants.
var K = [4]uint32{0x5a827999, 0x6ed9eba1, 0x8f1bbcdc, 0xca62c1d6}

// IV returns the standard initial state.
func IV() [5]uint32 { return iv }

func fCh(b, c, d uint32) uint32     { return (b & c) | (^b & d) }
func fParity(b, c, d uint32) uint32 { return b ^ c ^ d }
func fMaj(b, c, d uint32) uint32    { return (b & c) | (b & d) | (c & d) }

// Expand fills w[16..79] from w[0..15] with the SHA1 message schedule.
func Expand(w *[80]uint32) {
	for i := 16; i < 80; i++ {
		w[i] = bits.RotateLeft32(w[i-3]^w[i-8]^w[i-14]^w[i-16], 1)
	}
}

// Compress applies the SHA1 block transform: it updates state in place with
// the 80-step compression of one 16-word big-endian block.
func Compress(state *[5]uint32, block *[16]uint32) {
	var w [80]uint32
	copy(w[:16], block[:])
	Expand(&w)

	a, b, c, d, e := state[0], state[1], state[2], state[3], state[4]
	for i := 0; i < 20; i++ {
		t := bits.RotateLeft32(a, 5) + fCh(b, c, d) + e + w[i] + K[0]
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}
	for i := 20; i < 40; i++ {
		t := bits.RotateLeft32(a, 5) + fParity(b, c, d) + e + w[i] + K[1]
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}
	for i := 40; i < 60; i++ {
		t := bits.RotateLeft32(a, 5) + fMaj(b, c, d) + e + w[i] + K[2]
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}
	for i := 60; i < 80; i++ {
		t := bits.RotateLeft32(a, 5) + fParity(b, c, d) + e + w[i] + K[3]
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}

	state[0] += a
	state[1] += b
	state[2] += c
	state[3] += d
	state[4] += e
}

// Digest is a streaming SHA1 computation implementing hash.Hash semantics.
type Digest struct {
	state [5]uint32
	buf   [BlockSize]byte
	n     int
	len   uint64
}

// New returns a reset Digest.
func New() *Digest {
	d := new(Digest)
	d.Reset()
	return d
}

// Reset restores the initial state.
func (d *Digest) Reset() {
	d.state = iv
	d.n = 0
	d.len = 0
}

// Size returns the digest length in bytes.
func (d *Digest) Size() int { return Size }

// BlockSize returns the block length in bytes.
func (d *Digest) BlockSize() int { return BlockSize }

// Write absorbs p into the digest. It never returns an error.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize {
			d.compressBuf()
			d.n = 0
		}
	}
	for len(p) >= BlockSize {
		var block [16]uint32
		for i := range block {
			block[i] = binary.BigEndian.Uint32(p[4*i:])
		}
		Compress(&d.state, &block)
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.n = copy(d.buf[:], p)
	}
	return n, nil
}

func (d *Digest) compressBuf() {
	var block [16]uint32
	for i := range block {
		block[i] = binary.BigEndian.Uint32(d.buf[4*i:])
	}
	Compress(&d.state, &block)
}

// Sum appends the digest of the data written so far to b.
func (d *Digest) Sum(b []byte) []byte {
	tmp := *d
	tmp.buf[tmp.n] = 0x80
	for i := tmp.n + 1; i < BlockSize; i++ {
		tmp.buf[i] = 0
	}
	if tmp.n >= 56 {
		tmp.compressBuf()
		for i := range tmp.buf {
			tmp.buf[i] = 0
		}
	}
	binary.BigEndian.PutUint64(tmp.buf[56:], tmp.len<<3)
	tmp.compressBuf()
	var out [Size]byte
	for i, s := range tmp.state {
		binary.BigEndian.PutUint32(out[4*i:], s)
	}
	return append(b, out[:]...)
}

// Sum returns the SHA1 digest of data.
func Sum(data []byte) [Size]byte {
	d := New()
	d.Write(data)
	var out [Size]byte
	copy(out[:], d.Sum(nil))
	return out
}

// StateWords decodes a 20-byte digest into five big-endian state words.
func StateWords(digest [Size]byte) [5]uint32 {
	var w [5]uint32
	for i := range w {
		w[i] = binary.BigEndian.Uint32(digest[4*i:])
	}
	return w
}

// DigestBytes encodes five state words as a 20-byte digest.
func DigestBytes(w [5]uint32) [Size]byte {
	var out [Size]byte
	for i := range w {
		binary.BigEndian.PutUint32(out[4*i:], w[i])
	}
	return out
}
