package sha1x

import (
	"bytes"
	"crypto/sha1"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRFC3174Vectors checks the RFC 3174 test suite plus FIPS examples.
func TestRFC3174Vectors(t *testing.T) {
	vectors := []struct{ in, want string }{
		{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
		{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
		{"The quick brown fox jumps over the lazy dog",
			"2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"},
	}
	for _, v := range vectors {
		got := Sum([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("Sum(%q) = %x, want %s", v.in, got, v.want)
		}
	}
	// "a" repeated one million times (RFC 3174 test 3), via streaming.
	d := New()
	chunk := bytes.Repeat([]byte("a"), 1000)
	for i := 0; i < 1000; i++ {
		d.Write(chunk)
	}
	if got := hex.EncodeToString(d.Sum(nil)); got != "34aa973cd4c4daa4f61eeb2bdbad27316534016f" {
		t.Errorf("million a's = %s", got)
	}
}

func TestDifferentialAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		n := rng.Intn(300)
		switch i {
		case 0:
			n = 55
		case 1:
			n = 56
		case 2:
			n = 63
		case 3:
			n = 64
		case 4:
			n = 65
		}
		data := make([]byte, n)
		rng.Read(data)
		got := Sum(data)
		want := sha1.Sum(data)
		if got != want {
			t.Fatalf("len %d: got %x, want %x", n, got, want)
		}
	}
}

func TestStreamingWriteChunks(t *testing.T) {
	data := make([]byte, 777)
	rng := rand.New(rand.NewSource(2))
	rng.Read(data)
	want := Sum(data)
	d := New()
	rest := data
	for len(rest) > 0 {
		n := rng.Intn(64) + 1
		if n > len(rest) {
			n = len(rest)
		}
		d.Write(rest[:n])
		rest = rest[n:]
	}
	if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("chunked = %x, want %x", got, want)
	}
}

func TestStateWordsRoundTrip(t *testing.T) {
	sum := Sum([]byte("roundtrip"))
	if DigestBytes(StateWords(sum)) != sum {
		t.Error("StateWords/DigestBytes not inverse")
	}
}

func TestPackKeyMatchesPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= MaxSingleBlockKey; n++ {
		key := make([]byte, n)
		for i := range key {
			key[i] = byte(rng.Intn(256))
		}
		var block [16]uint32
		if err := PackKey(key, &block); err != nil {
			t.Fatalf("PackKey len %d: %v", n, err)
		}
		got := DigestBytes(SumPacked(&block))
		want := sha1.Sum(key)
		if got != want {
			t.Fatalf("len %d: packed digest %x, want %x", n, got, want)
		}
		if PackedLen(&block) != n {
			t.Fatalf("PackedLen = %d, want %d", PackedLen(&block), n)
		}
		if back := UnpackKey(nil, &block); !bytes.Equal(back, key) {
			t.Fatalf("UnpackKey = %x, want %x", back, key)
		}
	}
	var block [16]uint32
	if err := PackKey(make([]byte, 56), &block); err == nil {
		t.Error("want error for 56-byte key")
	}
}

func TestSearcherFindsKey(t *testing.T) {
	for _, key := range []string{"", "a", "abc", "abcd", "Pa55word!", "0123456789abcdef0123"} {
		digest := sha1.Sum([]byte(key))
		s := NewSearcher(digest)
		if !s.Test([]byte(key)) {
			t.Errorf("Searcher rejected its own key %q", key)
		}
		if !s.TestPlain([]byte(key)) {
			t.Errorf("TestPlain rejected its own key %q", key)
		}
		if s.Test([]byte(key + "x")) {
			t.Errorf("Searcher accepted a wrong key for %q", key)
		}
	}
}

func TestSearcherLongKeys(t *testing.T) {
	long := bytes.Repeat([]byte("xyz"), 30)
	s := NewSearcher(sha1.Sum(long))
	if !s.Test(long) {
		t.Error("long key rejected")
	}
	long[10]++
	if s.Test(long) {
		t.Error("mutated long key accepted")
	}
}

func TestQuickSearcherAgreesWithOracle(t *testing.T) {
	f := func(keyBytes []byte, targetSeed []byte) bool {
		if len(keyBytes) > 55 {
			keyBytes = keyBytes[:55]
		}
		target := sha1.Sum(targetSeed)
		s := NewSearcher(target)
		want := sha1.Sum(keyBytes) == target
		return s.Test(keyBytes) == want && s.TestPlain(keyBytes) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestNoFalsePositives hammers the early-exit kernel with near-miss
// candidates sharing a long prefix with the real key.
func TestNoFalsePositives(t *testing.T) {
	target := sha1.Sum([]byte("aaaa0000"))
	s := NewSearcher(target)
	key := []byte("aaaa0000")
	hits := 0
	for c0 := byte('a'); c0 <= 'z'; c0++ {
		for c1 := byte('a'); c1 <= 'z'; c1++ {
			key[0], key[1] = c0, c1
			if s.Test(key) {
				hits++
				if c0 != 'a' || c1 != 'a' {
					t.Fatalf("false positive at %q", key)
				}
			}
		}
	}
	if hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
}

func BenchmarkTestEarlyExit(b *testing.B) {
	key := []byte("aaaaaaaa")
	target := sha1.Sum([]byte("zzzzzzzz"))
	s := NewSearcher(target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Test(key)
	}
}

func BenchmarkTestPlain(b *testing.B) {
	key := []byte("aaaaaaaa")
	target := sha1.Sum([]byte("zzzzzzzz"))
	s := NewSearcher(target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TestPlain(key)
	}
}
