module keysearch

go 1.23
