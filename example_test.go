package keysearch_test

import (
	"context"
	"fmt"
	"math/big"

	"keysearch"
)

// ExampleCrackHex inverts an MD5 digest over a small key space.
func ExampleCrackHex() {
	space, _ := keysearch.NewSpace(keysearch.Lowercase, 1, 3)
	res, _ := keysearch.CrackHex(context.Background(), keysearch.MD5,
		"900150983cd24fb0d6963f7d28e17f72", space) // md5("abc")
	fmt.Printf("%s\n", res.Solutions[0])
	// Output: abc
}

// ExampleNewSpace shows the paper's prefix-major enumeration (equation 4):
// the first character changes fastest, which is what lets a GPU thread
// iterate candidates while its packed suffix stays constant.
func ExampleNewSpace() {
	space, _ := keysearch.NewSpace("abc", 1, 2)
	for id := int64(0); id < 6; id++ {
		key, _ := space.Key(bigInt(id))
		fmt.Printf("%s ", key)
	}
	fmt.Println()
	// Output: a b c aa ba ca
}

// ExampleParseMask cracks a patterned password with a per-position mask.
func ExampleParseMask() {
	m, _ := keysearch.ParseMask("?u?l?d")
	digest := keysearch.HashKey(keysearch.MD5, []byte("Go1"))
	res, _ := keysearch.MaskAttack(context.Background(), keysearch.MD5, digest, m, keysearch.Options{})
	fmt.Printf("%s of %v candidates\n", res.Solutions[0], m.Size())
	// Output: Go1 of 6760 candidates
}

// ExampleSalt shows that salting leaves brute force intact: the salt is
// public, so it folds into the kernel without growing the search space.
func ExampleSalt() {
	salt := keysearch.Salt{Suffix: []byte("NaCl")}
	digest := keysearch.HashKey(keysearch.MD5, []byte("catNaCl"))
	space, _ := keysearch.NewSpace(keysearch.Lowercase, 1, 3)
	res, _ := keysearch.CrackSalted(context.Background(), keysearch.MD5, digest, salt, space, keysearch.Options{})
	fmt.Printf("%s\n", res.Solutions[0])
	// Output: cat
}

// ExampleSimulateCluster runs the paper's Table IX experiment: the
// five-GPU network searching in virtual time.
func ExampleSimulateCluster() {
	tree := keysearch.PaperNetwork(keysearch.MD5)
	res, _ := keysearch.SimulateCluster(tree, 1e11, keysearch.ClusterOptions{})
	fmt.Printf("dispatch efficiency > 0.95: %v\n", res.DispatchEfficiency > 0.95)
	// Output: dispatch efficiency > 0.95: true
}

func bigInt(v int64) *big.Int { return big.NewInt(v) }
